package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/service/registry"
)

// ---- satellite: per-tenant signature cache ----

// TestSigCachePerTenant is the cross-tenant cache regression test: two
// tenants signing the SAME message must never share a cache entry — a
// digest-only key would serve tenant A's signature to tenant B.
func TestSigCachePerTenant(t *testing.T) {
	msg := []byte("the very same message")
	ka, kb := sigKey("alpha", msg), sigKey("beta", msg)
	if ka == kb {
		t.Fatal("cache keys for two tenants signing the same message collide")
	}
	if ka.digest != kb.digest {
		t.Fatal("same message should hash to the same digest component")
	}

	c := newSigCache(4)
	sigA, sigB := &core.Signature{}, &core.Signature{}
	c.add(ka, sigA, []int{1, 2})
	if _, _, ok := c.get(kb); ok {
		t.Fatal("tenant beta got a cache hit on tenant alpha's signature")
	}
	c.add(kb, sigB, []int{3, 4})
	if got, _, ok := c.get(ka); !ok || got != sigA {
		t.Fatal("tenant alpha's entry was clobbered by tenant beta's")
	}
	if got, _, ok := c.get(kb); !ok || got != sigB {
		t.Fatal("tenant beta's own entry missing")
	}

	// Rotating alpha drops exactly alpha's entries.
	c.dropGroup("alpha")
	if _, _, ok := c.get(ka); ok {
		t.Fatal("dropGroup left tenant alpha's entry behind")
	}
	if _, _, ok := c.get(kb); !ok {
		t.Fatal("dropGroup evicted tenant beta's entry too")
	}
}

// ---- HTTP plumbing helpers ----

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func httpPost(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func httpDelete(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// signOverHTTP posts a sign request and returns the decoded response.
func signOverHTTP(t *testing.T, baseURL, prefix string, msg []byte) *SignatureResponse {
	t.Helper()
	body, _ := json.Marshal(SignRequest{Message: msg})
	status, raw := httpPost(t, baseURL+prefix+"/sign", string(body))
	if status != http.StatusOK {
		t.Fatalf("POST %s/sign: status %d: %s", prefix, status, raw)
	}
	var sr SignatureResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	return &sr
}

// runDKGOverHTTP mints (or rotates) a tenant through the coordinator's
// HTTP surface and returns the resulting group.
func runDKGOverHTTP(t *testing.T, coordURL, prefix string, thr int, domain string, rotate bool) *core.Group {
	t.Helper()
	body, _ := json.Marshal(ProtoRunRequest{T: thr, Domain: domain, Rotate: rotate})
	status, raw := httpPost(t, coordURL+prefix+"/proto/dkg/run", string(body))
	if status != http.StatusOK {
		t.Fatalf("POST %s/proto/dkg/run: status %d: %s", prefix, status, raw)
	}
	var pr ProtoRunResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatal(err)
	}
	group, err := core.UnmarshalGroup(pr.Group)
	if err != nil {
		t.Fatal(err)
	}
	return group
}

// ---- satellite: legacy-route parity ----

// TestLegacyRouteParity pins the back-compat contract: every legacy
// un-namespaced /v1/* route answers byte-identically to its
// /v1/g/default/* twin — same handlers, same bodies, same errors.
func TestLegacyRouteParity(t *testing.T) {
	f := testFixture(t)
	urls := startSigners(t, f, nil)
	// Caching disabled so the legacy and namespaced sign calls cannot
	// influence each other through the shared cache ("cached":true flag).
	coord := newTestCoordinator(t, urls, CoordinatorConfig{CacheSize: -1})
	coordSrv := httptest.NewServer(coord)
	t.Cleanup(coordSrv.Close)
	signerSrv := httptest.NewServer(newTestSigner(t, f, 1))
	t.Cleanup(signerSrv.Close)

	signBody, _ := json.Marshal(SignRequest{Message: []byte("parity probe")})
	batchBody, _ := json.Marshal(SignBatchRequest{Messages: [][]byte{[]byte("p1"), []byte("p2")}})

	get := func(base, path string) (int, []byte) { return httpGet(t, base+path) }
	post := func(body string) func(string, string) (int, []byte) {
		return func(base, path string) (int, []byte) { return httpPost(t, base+path, body) }
	}

	cases := []struct {
		name string
		base string
		path string // without the /v1 or /v1/g/default prefix
		call func(base, path string) (int, []byte)
		// signature-bearing responses compare only the signature field:
		// the Signers accounting legitimately varies run to run (first
		// t+1 responders win the race).
		sigOnly bool
		// method-not-allowed bodies echo the request path, which
		// differs by construction; those compare the wire code only.
		codeOnly bool
	}{
		{name: "signer pubkey", base: signerSrv.URL, path: "/pubkey", call: get},
		{name: "signer vk", base: signerSrv.URL, path: "/vk", call: get},
		{name: "signer sign", base: signerSrv.URL, path: "/sign", call: post(string(signBody))},
		{name: "signer sign-batch", base: signerSrv.URL, path: "/sign-batch", call: post(string(batchBody))},
		{name: "signer sign empty message", base: signerSrv.URL, path: "/sign", call: post(`{"message":""}`)},
		{name: "signer sign bad json", base: signerSrv.URL, path: "/sign", call: post(`{`)},
		{name: "signer sign wrong method", base: signerSrv.URL, path: "/sign", call: get, codeOnly: true},
		{name: "signer proto bad start", base: signerSrv.URL, path: "/proto/dkg/start", call: post(`{"session":""}`)},
		{name: "coordinator pubkey", base: coordSrv.URL, path: "/pubkey", call: get},
		{name: "coordinator sign", base: coordSrv.URL, path: "/sign", call: post(string(signBody)), sigOnly: true},
		{name: "coordinator sign empty message", base: coordSrv.URL, path: "/sign", call: post(`{"message":""}`)},
		{name: "coordinator sign wrong method", base: coordSrv.URL, path: "/sign", call: get, codeOnly: true},
		{name: "coordinator dkg bad params", base: coordSrv.URL, path: "/proto/dkg/run", call: post(`{"t":0,"domain":"x"}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacyStatus, legacyBody := tc.call(tc.base, "/v1"+tc.path)
			nsStatus, nsBody := tc.call(tc.base, "/v1/g/default"+tc.path)
			if legacyStatus != nsStatus {
				t.Fatalf("status mismatch: legacy %d, namespaced %d (%s vs %s)",
					legacyStatus, nsStatus, legacyBody, nsBody)
			}
			if tc.codeOnly {
				var l, n ErrorResponse
				if err := json.Unmarshal(legacyBody, &l); err != nil {
					t.Fatal(err)
				}
				if err := json.Unmarshal(nsBody, &n); err != nil {
					t.Fatal(err)
				}
				if l.Code != n.Code || l.Code == "" {
					t.Fatalf("wire code mismatch: legacy %q, namespaced %q", l.Code, n.Code)
				}
				return
			}
			if tc.sigOnly {
				var l, n SignatureResponse
				if err := json.Unmarshal(legacyBody, &l); err != nil {
					t.Fatal(err)
				}
				if err := json.Unmarshal(nsBody, &n); err != nil {
					t.Fatal(err)
				}
				// The scheme is deterministic, so the same message under
				// the same (default) group yields the same signature bytes
				// on both routes.
				if !bytes.Equal(l.Signature, n.Signature) {
					t.Fatal("legacy and namespaced routes produced different signatures")
				}
				return
			}
			if !bytes.Equal(legacyBody, nsBody) {
				t.Fatalf("body mismatch:\nlegacy:     %s\nnamespaced: %s", legacyBody, nsBody)
			}
		})
	}
}

// ---- satellite: /readyz readiness split ----

// TestReadyzLifecycle: /healthz answers OK even keyless (liveness), while
// /readyz gates on actual key material per group.
func TestReadyzLifecycle(t *testing.T) {
	coord, signers := startDaemonQuorum(t, 3, CoordinatorConfig{}, nil, nil)
	coordSrv := httptest.NewServer(coord)
	t.Cleanup(coordSrv.Close)
	signerSrv := httptest.NewServer(signers[1])
	t.Cleanup(signerSrv.Close)

	for _, base := range []string{coordSrv.URL, signerSrv.URL} {
		if status, _ := httpGet(t, base+"/healthz"); status != http.StatusOK {
			t.Fatalf("keyless /healthz = %d, want 200 (liveness must not gate on keys)", status)
		}
		status, raw := httpGet(t, base+"/readyz")
		if status != http.StatusServiceUnavailable {
			t.Fatalf("keyless /readyz = %d, want 503", status)
		}
		var rr ReadyResponse
		if err := json.Unmarshal(raw, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Status != "unready" {
			t.Fatalf("keyless readyz status %q, want unready", rr.Status)
		}
	}

	if _, _, err := coord.RunDKG(context.Background(), 1, "readyz/v1"); err != nil {
		t.Fatal(err)
	}

	for _, base := range []string{coordSrv.URL, signerSrv.URL} {
		status, raw := httpGet(t, base+"/readyz")
		if status != http.StatusOK {
			t.Fatalf("keyed /readyz = %d, want 200 (%s)", status, raw)
		}
		var rr ReadyResponse
		if err := json.Unmarshal(raw, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Status != "ready" {
			t.Fatalf("keyed readyz status %q, want ready", rr.Status)
		}
		var def *GroupInfo
		for i := range rr.Groups {
			if rr.Groups[i].ID == DefaultGroupID {
				def = &rr.Groups[i]
			}
		}
		if def == nil || !def.Ready || def.Epoch != 1 {
			t.Fatalf("readyz default group = %+v, want ready at epoch 1", def)
		}
	}
	// The signer's readyz names its index for fleet debugging.
	_, raw := httpGet(t, signerSrv.URL+"/readyz")
	var rr ReadyResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Index != 1 {
		t.Fatalf("signer readyz index = %d, want 1", rr.Index)
	}
}

// ---- acceptance: two tenants on one fleet ----

// TestE2E_MultiTenantFleet is the acceptance scenario: ONE fleet of five
// keyless daemons serves two tenants. The default tenant is keyed over
// the legacy route; the second tenant ("orders") is minted at runtime by
// an on-demand remote DKG against a previously-unknown group ID. The
// two key groups are independent: interleaved sign/sign-batch traffic
// verifies under each tenant's own public key and under no other, a
// proactive refresh of one tenant leaves the other bit-for-bit
// untouched, and every legacy un-namespaced route stays green
// throughout.
func TestE2E_MultiTenantFleet(t *testing.T) {
	coord, signers := startDaemonQuorum(t, 5, CoordinatorConfig{}, nil, nil)
	coordSrv := httptest.NewServer(coord)
	t.Cleanup(coordSrv.Close)

	// Tenant 1: the default group, born over the legacy route.
	defGroup := runDKGOverHTTP(t, coordSrv.URL, "/v1", 2, "mt/default", false)

	// Tenant 2: minted at runtime — the fleet has never heard of
	// "orders"; the DKG run registers it and raises its key on the spot.
	ordGroup := runDKGOverHTTP(t, coordSrv.URL, "/v1/g/orders", 2, "mt/orders", false)

	if defGroup.PK.Equal(ordGroup.PK) {
		t.Fatal("two tenants share a public key")
	}
	// Every daemon now holds BOTH tenants' shares, in separate states.
	for i := 1; i <= 5; i++ {
		tn, err := signers[i].tenant("orders", false)
		if err != nil {
			t.Fatalf("daemon %d has no orders tenant: %v", i, err)
		}
		if st := tn.state.Load(); st == nil || !st.group.PK.Equal(ordGroup.PK) {
			t.Fatalf("daemon %d orders state missing or wrong", i)
		}
		if g := signers[i].Group(); g == nil || !g.PK.Equal(defGroup.PK) {
			t.Fatalf("daemon %d default state clobbered by the orders keygen", i)
		}
	}

	// Interleaved single-sign traffic under both tenants.
	for round := 0; round < 3; round++ {
		msg := []byte(fmt.Sprintf("interleaved %d", round))
		defSig := signOverHTTP(t, coordSrv.URL, "/v1", msg)
		ordSig := signOverHTTP(t, coordSrv.URL, "/v1/g/orders", msg)
		ds, err := core.UnmarshalSignature(defSig.Signature)
		if err != nil {
			t.Fatal(err)
		}
		os, err := core.UnmarshalSignature(ordSig.Signature)
		if err != nil {
			t.Fatal(err)
		}
		if !core.Verify(defGroup.PK, msg, ds) || !core.Verify(ordGroup.PK, msg, os) {
			t.Fatalf("round %d: signature fails under its own tenant key", round)
		}
		// Cross-checks: each tenant's signature must NOT verify under
		// the other tenant's key (independent keys, domains, caches).
		if core.Verify(ordGroup.PK, msg, ds) || core.Verify(defGroup.PK, msg, os) {
			t.Fatalf("round %d: signature verifies under the WRONG tenant's key", round)
		}
	}

	// Interleaved batch traffic.
	msgs := [][]byte{[]byte("batch a"), []byte("batch b"), []byte("batch c")}
	batchBody, _ := json.Marshal(SignBatchRequest{Messages: msgs})
	for _, tc := range []struct {
		prefix string
		group  *core.Group
	}{{"/v1", defGroup}, {"/v1/g/orders", ordGroup}} {
		status, raw := httpPost(t, coordSrv.URL+tc.prefix+"/sign-batch", string(batchBody))
		if status != http.StatusOK {
			t.Fatalf("POST %s/sign-batch: status %d: %s", tc.prefix, status, raw)
		}
		var br SignBatchResponse
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatal(err)
		}
		if len(br.Results) != len(msgs) {
			t.Fatalf("%s batch answered %d results", tc.prefix, len(br.Results))
		}
		for j, res := range br.Results {
			if res.Error != "" {
				t.Fatalf("%s batch message %d failed: %s", tc.prefix, j, res.Error)
			}
			sig, err := core.UnmarshalSignature(res.Signature)
			if err != nil {
				t.Fatal(err)
			}
			if !core.Verify(tc.group.PK, msgs[j], sig) {
				t.Fatalf("%s batch message %d does not verify", tc.prefix, j)
			}
		}
	}

	// Refresh ONE tenant; the other must be bit-for-bit untouched.
	defBefore := signers[1].Group().Marshal()
	ordBefore := ordGroup.Marshal()
	refreshed := func() *core.Group {
		status, raw := httpPost(t, coordSrv.URL+"/v1/g/orders/proto/refresh/run", `{}`)
		if status != http.StatusOK {
			t.Fatalf("refresh orders: status %d: %s", status, raw)
		}
		var pr ProtoRunResponse
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatal(err)
		}
		g, err := core.UnmarshalGroup(pr.Group)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}()
	if !refreshed.PK.Equal(ordGroup.PK) {
		t.Fatal("refresh changed the orders public key")
	}
	if bytes.Equal(refreshed.Marshal(), ordBefore) {
		t.Fatal("refresh did not re-randomize the orders verification keys")
	}
	if !bytes.Equal(signers[1].Group().Marshal(), defBefore) {
		t.Fatal("refreshing the orders tenant mutated the default tenant's group")
	}

	// Legacy routes stay green after all the tenant traffic.
	msg := []byte("legacy still first-class")
	sr := signOverHTTP(t, coordSrv.URL, "/v1", msg)
	sig, err := core.UnmarshalSignature(sr.Signature)
	if err != nil {
		t.Fatal(err)
	}
	if !core.Verify(defGroup.PK, msg, sig) {
		t.Fatal("legacy sign broken after multi-tenant traffic")
	}
	if status, _ := httpGet(t, coordSrv.URL+"/v1/pubkey"); status != http.StatusOK {
		t.Fatal("legacy /v1/pubkey broken")
	}
	status, raw := httpGet(t, coordSrv.URL+"/v1/groups")
	if status != http.StatusOK {
		t.Fatalf("/v1/groups: status %d", status)
	}
	var gr GroupsResponse
	if err := json.Unmarshal(raw, &gr); err != nil {
		t.Fatal(err)
	}
	ready := 0
	for _, g := range gr.Groups {
		if g.Ready {
			ready++
		}
	}
	if ready != 2 {
		t.Fatalf("/v1/groups reports %d ready groups, want 2 (%s)", ready, raw)
	}
}

// ---- rotation and deletion lifecycle ----

func TestGroupRotationAndDeletion(t *testing.T) {
	coord, _ := startDaemonQuorum(t, 3, CoordinatorConfig{}, nil, nil)
	coordSrv := httptest.NewServer(coord)
	t.Cleanup(coordSrv.Close)
	ctx := context.Background()

	g1, _, err := coord.RunDKGGroup(ctx, "pay", 1, "rot/v1", false)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("pre-rotation")
	sig1, _, err := coord.SignGroup(ctx, "pay", msg)
	if err != nil {
		t.Fatal(err)
	}
	if !core.Verify(g1.PK, msg, sig1) {
		t.Fatal("pre-rotation signature invalid")
	}

	// A plain re-keygen on a keyed tenant is still a conflict …
	if _, _, err := coord.RunDKGGroup(ctx, "pay", 1, "rot/v1", false); !errors.Is(err, ErrConflict) {
		t.Fatalf("re-keygen err = %v, want ErrConflict", err)
	}
	// … but an explicit rotation replaces the key under a bumped epoch.
	g2, _, err := coord.RunDKGGroup(ctx, "pay", 1, "rot/v1", true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.PK.Equal(g1.PK) {
		t.Fatal("rotation kept the same public key")
	}
	if rec, ok := coord.reg.Get("pay"); !ok || rec.Epoch != 2 {
		t.Fatalf("post-rotation record = %+v, want epoch 2", rec)
	}
	// The rotation must have dropped the cached pre-rotation signature:
	// re-signing the same message yields the NEW key's signature.
	sig2, rep, err := coord.SignGroup(ctx, "pay", msg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cached {
		t.Fatal("post-rotation sign served the old cached signature")
	}
	if !core.Verify(g2.PK, msg, sig2) || core.Verify(g1.PK, msg, sig2) {
		t.Fatal("post-rotation signature not under the new key")
	}

	// Deletion tombstones the tenant across the fleet.
	status, raw := httpDelete(t, coordSrv.URL+"/v1/g/pay")
	if status != http.StatusOK {
		t.Fatalf("DELETE /v1/g/pay: status %d: %s", status, raw)
	}
	var dr GroupDeleteResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Unreachable) != 0 {
		t.Fatalf("deletion missed signers %v", dr.Unreachable)
	}
	if _, _, err := coord.SignGroup(ctx, "pay", msg); !errors.Is(err, ErrGroupDeleted) {
		t.Fatalf("post-delete sign err = %v, want ErrGroupDeleted", err)
	}
	// Over the wire: 410 Gone with the typed code.
	body, _ := json.Marshal(SignRequest{Message: msg})
	st, raw := httpPost(t, coordSrv.URL+"/v1/g/pay/sign", string(body))
	if st != http.StatusGone {
		t.Fatalf("post-delete HTTP sign = %d, want 410 (%s)", st, raw)
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Code != CodeGroupDeleted {
		t.Fatalf("post-delete error body %s", raw)
	}
	// The ID is retired PERMANENTLY — a fresh mint must refuse.
	if _, _, err := coord.RunDKGGroup(ctx, "pay", 1, "rot/v2", false); !errors.Is(err, ErrGroupDeleted) {
		t.Fatalf("re-mint of tombstoned id err = %v, want ErrGroupDeleted", err)
	}
	// Deletion is idempotent.
	if st, _ := httpDelete(t, coordSrv.URL+"/v1/g/pay"); st != http.StatusOK {
		t.Fatalf("second DELETE = %d, want 200", st)
	}

	// Unknown and malformed IDs answer their own typed errors.
	if st, _ = httpPost(t, coordSrv.URL+"/v1/g/nonesuch/sign", string(body)); st != http.StatusNotFound {
		t.Fatalf("unknown group sign = %d, want 404", st)
	}
	if st, _ = httpPost(t, coordSrv.URL+"/v1/g/bad..%2Fid/sign", string(body)); st == http.StatusOK {
		t.Fatal("malformed group id accepted")
	}
}

// ---- durable multi-tenant keystores ----

// TestTenantKeystorePersistence: a fleet with file-backed registries
// mints a tenant, is torn down entirely, and is rebuilt over the same
// directories — every tenant (default and named) must come back from
// disk and sign without any new key generation.
func TestTenantKeystorePersistence(t *testing.T) {
	n := 3
	signerDirs := make([]string, n+1)
	for i := 1; i <= n; i++ {
		signerDirs[i] = t.TempDir()
	}
	coordDir := t.TempDir()
	ctx := context.Background()

	openReg := func(dir string) *registry.Registry {
		reg, err := registry.Open(registry.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return reg
	}
	buildFleet := func() (*Coordinator, func()) {
		urls := make([]string, n)
		var closers []func()
		for i := 1; i <= n; i++ {
			s, err := NewDaemonSigner(DaemonConfig{Index: i, Registry: openReg(signerDirs[i])})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(s)
			closers = append(closers, srv.Close)
			urls[i-1] = srv.URL
		}
		coord, err := NewKeylessCoordinator(urls, CoordinatorConfig{Registry: openReg(coordDir)})
		if err != nil {
			t.Fatal(err)
		}
		return coord, func() {
			for _, c := range closers {
				c()
			}
		}
	}

	coord, stop := buildFleet()
	defGroup, _, err := coord.RunDKG(ctx, 1, "persist/default")
	if err != nil {
		t.Fatal(err)
	}
	payGroup, _, err := coord.RunDKGGroup(ctx, "pay", 1, "persist/pay", false)
	if err != nil {
		t.Fatal(err)
	}
	stop() // the whole fleet goes away

	// A brand-new fleet over the same directories: no DKG this time.
	coord2, stop2 := buildFleet()
	defer stop2()
	msg := []byte("risen from disk")
	sig, _, err := coord2.Sign(ctx, msg)
	if err != nil {
		t.Fatalf("default tenant did not come back from disk: %v", err)
	}
	if !core.Verify(defGroup.PK, msg, sig) {
		t.Fatal("restored default tenant signs under a different key")
	}
	paySig, _, err := coord2.SignGroup(ctx, "pay", msg)
	if err != nil {
		t.Fatalf("named tenant did not come back from disk: %v", err)
	}
	if !core.Verify(payGroup.PK, msg, paySig) {
		t.Fatal("restored pay tenant signs under a different key")
	}
	// The registry remembers the epochs too.
	if rec, ok := coord2.reg.Get("pay"); !ok || rec.Epoch != 1 || rec.Domain != "persist/pay" {
		t.Fatalf("restored pay record = %+v", rec)
	}
}

// TestFileKeyAdoption: a daemon started from -group/-share FILES plus a
// file-backed registry must adopt that key material into the keystore,
// so a later restart from the keystore alone still serves the default
// group (regression: only DKG-minted groups were persisted, leaving a
// manifest record that claimed a readiness the keystore couldn't back).
func TestFileKeyAdoption(t *testing.T) {
	f := testFixture(t)

	// Signer: file material in, keystore restart out.
	sdir := t.TempDir()
	reg1, err := registry.Open(registry.Config{Dir: sdir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDaemonSigner(DaemonConfig{Group: f.group, Share: f.shares[1], Registry: reg1}); err != nil {
		t.Fatal(err)
	}
	reg2, err := registry.Open(registry.Config{Dir: sdir})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewDaemonSigner(DaemonConfig{Index: 1, Registry: reg2})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Group() == nil || !s2.Group().PK.Equal(f.group.PK) {
		t.Fatal("restarted signer did not recover the adopted default group")
	}

	// Coordinator: the public group file round-trips the same way.
	cdir := t.TempDir()
	creg1, err := registry.Open(registry.Config{Dir: cdir})
	if err != nil {
		t.Fatal(err)
	}
	urls := startSigners(t, f, nil)
	if _, err := NewCoordinator(f.group, urls, CoordinatorConfig{Registry: creg1}); err != nil {
		t.Fatal(err)
	}
	creg2, err := registry.Open(registry.Config{Dir: cdir})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewKeylessCoordinator(urls, CoordinatorConfig{Registry: creg2})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Group() == nil || !c2.Group().PK.Equal(f.group.PK) {
		t.Fatal("restarted coordinator did not recover the adopted default group")
	}
}
