package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/bn254"
	"repro/internal/core"
	"repro/internal/dkg"
	"repro/internal/engine"
)

// startDaemonQuorum starts n keyless signer daemons on loopback HTTP and
// a keyless coordinator over them: zero pre-distributed key material
// anywhere. mutate, when non-nil, may replace a daemon's player factory
// (Byzantine injection) before its server starts; down marks daemon
// indices whose server is torn down immediately (a crashed machine).
func startDaemonQuorum(t *testing.T, n int, cfg CoordinatorConfig,
	mutate func(i int, s *Signer), down map[int]bool) (*Coordinator, []*Signer) {
	t.Helper()
	urls := make([]string, n)
	signers := make([]*Signer, n+1)
	for i := 1; i <= n; i++ {
		s, err := NewDaemonSigner(DaemonConfig{Index: i})
		if err != nil {
			t.Fatal(err)
		}
		if mutate != nil {
			mutate(i, s)
		}
		signers[i] = s
		srv := httptest.NewServer(s)
		if down[i] {
			srv.Close()
		} else {
			t.Cleanup(srv.Close)
		}
		urls[i-1] = srv.URL
	}
	coord, err := NewKeylessCoordinator(urls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return coord, signers
}

// TestE2E_DKGOverHTTP is the paper's "born distributively" story over the
// wire: five keyless daemons (n=5, t=2) run the distributed keygen over
// loopback HTTP with no trusted dealer and no pre-distributed key
// material, and the quorum immediately serves verified signatures.
func TestE2E_DKGOverHTTP(t *testing.T) {
	var mu sync.Mutex
	persisted := map[int]int{} // index -> persist calls
	coord, signers := startDaemonQuorum(t, 5, CoordinatorConfig{}, func(i int, s *Signer) {
		s.persist = func(g *core.Group, sk *core.PrivateKeyShare) error {
			mu.Lock()
			defer mu.Unlock()
			if sk.Index != i {
				t.Errorf("daemon %d persisting share %d", i, sk.Index)
			}
			persisted[i]++
			return nil
		}
	}, nil)

	group, report, err := coord.RunDKG(context.Background(), 2, "proto-e2e/v1")
	if err != nil {
		t.Fatal(err)
	}
	if group.N != 5 || group.T != 2 || group.Domain != "proto-e2e/v1" {
		t.Fatalf("group = n=%d t=%d %q", group.N, group.T, group.Domain)
	}
	if len(report.Qual) != 5 || len(report.Crashed) != 0 {
		t.Fatalf("report = %+v, want full qual and no crashes", report)
	}
	// The optimistic fast path: deal, complain(none)+finalize — the
	// engine observes completion after round 2.
	if report.Rounds > 3 {
		t.Fatalf("fault-free DKG took %d rounds", report.Rounds)
	}
	mu.Lock()
	for i := 1; i <= 5; i++ {
		if persisted[i] != 1 {
			t.Fatalf("daemon %d persisted %d times, want 1", i, persisted[i])
		}
	}
	mu.Unlock()

	// Every daemon and the coordinator agree on the group.
	want := group.Marshal()
	for i := 1; i <= 5; i++ {
		g := signers[i].Group()
		if g == nil {
			t.Fatalf("daemon %d still keyless after keygen", i)
		}
		if string(g.Marshal()) != string(want) {
			t.Fatalf("daemon %d disagrees on the group", i)
		}
	}

	// The freshly keygen'd quorum serves signatures at once.
	msg := []byte("born and raised distributively")
	sig, rep, err := coord.Sign(context.Background(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if !group.Verify(msg, sig) {
		t.Fatal("signature does not verify under the DKG'd key")
	}
	if len(rep.Signers) != group.T+1 {
		t.Fatalf("combined %d shares, want %d", len(rep.Signers), group.T+1)
	}
}

// TestE2E_DKGWithCrashedSigner covers the acceptance scenario: one daemon
// is down for the whole keygen. The survivors exclude it (crash-player
// exclusion), agree on a group whose QUAL omits it, and the quorum still
// signs — robustness tolerates up to t crashed or Byzantine signers.
func TestE2E_DKGWithCrashedSigner(t *testing.T) {
	coord, signers := startDaemonQuorum(t, 5, CoordinatorConfig{}, nil, map[int]bool{3: true})

	group, report, err := coord.RunDKG(context.Background(), 2, "proto-crash/v1")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Crashed) != 1 || report.Crashed[0] != 3 {
		t.Fatalf("crashed = %v, want [3]", report.Crashed)
	}
	for _, q := range report.Qual {
		if q == 3 {
			t.Fatal("crashed signer ended up in QUAL")
		}
	}
	if len(report.Qual) != 4 {
		t.Fatalf("qual = %v, want the 4 survivors", report.Qual)
	}
	if signers[3].Group() != nil {
		t.Fatal("crashed daemon acquired key material")
	}

	msg := []byte("still signing with a crashed dealer")
	sig, rep, err := coord.Sign(context.Background(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if !group.Verify(msg, sig) {
		t.Fatal("signature does not verify")
	}
	for _, s := range rep.Signers {
		if s == 3 {
			t.Fatal("crashed signer contributed a share")
		}
	}
}

// TestE2E_DKGTooManyCrashes: beyond t crashed signers the run must fail
// typed rather than deliver an undersized quorum.
func TestE2E_DKGTooManyCrashes(t *testing.T) {
	coord, _ := startDaemonQuorum(t, 5, CoordinatorConfig{}, nil, map[int]bool{2: true, 3: true, 4: true})

	_, _, err := coord.RunDKG(context.Background(), 2, "proto-crash2/v1")
	if !errors.Is(err, ErrProtocolFailed) {
		t.Fatalf("err = %v, want ErrProtocolFailed", err)
	}
	if _, _, err := coord.Sign(context.Background(), []byte("x")); !errors.Is(err, ErrNoKeyMaterial) {
		t.Fatalf("sign after failed keygen: err = %v, want ErrNoKeyMaterial", err)
	}
}

// byzantineFactory wraps a daemon's player in an adversarial
// implementation from internal/dkg/byzantine.go.
func byzantineFactory(build func(hp *dkg.HonestPlayer) engine.Player) playerFactory {
	return func(proto string, cfg dkg.Config, id int) (engine.Player, *dkg.HonestPlayer, error) {
		hp, err := dkg.NewHonestPlayer(cfg, id)
		if err != nil {
			return nil, nil, err
		}
		return build(hp), hp, nil
	}
}

// TestE2E_DKGExcludesByzantineSigners replays the byzantine.go adversary
// suite against the networked engine: a DKG session over HTTP completes
// and the misbehaving signers end up excluded (or healed) exactly as in
// the in-process simulator.
func TestE2E_DKGExcludesByzantineSigners(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(i int, s *Signer)
		wantQual []int
	}{
		{
			// Dealer 2 sends player 4 a corrupted share but justifies the
			// complaint: the protocol heals and nobody is excluded.
			name: "wrong share healed",
			mutate: func(i int, s *Signer) {
				if i == 2 {
					s.proto.factory = byzantineFactory(func(hp *dkg.HonestPlayer) engine.Player {
						return &dkg.WrongShareDealer{HonestPlayer: hp, Victims: []int{4}}
					})
				}
			},
			wantQual: []int{1, 2, 3, 4, 5},
		},
		{
			// Dealer 2 wrongs player 4 and refuses to answer the
			// complaint: disqualified.
			name: "wrong share unjustified",
			mutate: func(i int, s *Signer) {
				if i == 2 {
					s.proto.factory = byzantineFactory(func(hp *dkg.HonestPlayer) engine.Player {
						return &dkg.WrongShareDealer{HonestPlayer: hp, Victims: []int{4}, RefuseResponse: true}
					})
				}
			},
			wantQual: []int{1, 3, 4, 5},
		},
		{
			// Player 5 complains falsely about dealer 1, who justifies:
			// nobody is excluded.
			name: "false complaint",
			mutate: func(i int, s *Signer) {
				if i == 5 {
					s.proto.factory = byzantineFactory(func(hp *dkg.HonestPlayer) engine.Player {
						return &dkg.FalseComplainer{HonestPlayer: hp, Target: 1}
					})
				}
			},
			wantQual: []int{1, 2, 3, 4, 5},
		},
		{
			// The Gennaro et al. bias attack: attacker 2 and helper 5
			// collude to pull the attacker's contribution out of the key
			// after seeing every dealing. The attacker is disqualified;
			// the protocol still completes.
			name: "bias attacker",
			mutate: func(i int, s *Signer) {
				switch i {
				case 2:
					s.proto.factory = byzantineFactory(func(hp *dkg.HonestPlayer) engine.Player {
						return &dkg.BiasAttacker{HonestPlayer: hp, Rule: alwaysExclude}
					})
				case 5:
					s.proto.factory = byzantineFactory(func(hp *dkg.HonestPlayer) engine.Player {
						return &dkg.BiasHelper{HonestPlayer: hp, AttackerID: 2, Rule: alwaysExclude}
					})
				}
			},
			wantQual: []int{1, 3, 4, 5},
		},
		{
			// A silent (crashed) state machine behind a live HTTP server:
			// it answers every step with no messages and is excluded from
			// QUAL because it never deals.
			name: "silent player",
			mutate: func(i int, s *Signer) {
				if i == 3 {
					s.proto.factory = func(proto string, cfg dkg.Config, id int) (engine.Player, *dkg.HonestPlayer, error) {
						return &dkg.CrashPlayer{Id: id}, nil, nil
					}
				}
			},
			wantQual: []int{1, 2, 4, 5},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coord, _ := startDaemonQuorum(t, 5, CoordinatorConfig{}, tc.mutate, nil)
			group, report, err := coord.RunDKG(context.Background(), 2, "proto-byz/v1")
			if err != nil {
				t.Fatal(err)
			}
			if len(report.Qual) != len(tc.wantQual) {
				t.Fatalf("qual = %v, want %v", report.Qual, tc.wantQual)
			}
			for j, q := range report.Qual {
				if q != tc.wantQual[j] {
					t.Fatalf("qual = %v, want %v", report.Qual, tc.wantQual)
				}
			}
			// The surviving quorum signs and verifies.
			msg := []byte("byzantine-resilient " + tc.name)
			sig, _, err := coord.Sign(context.Background(), msg)
			if err != nil {
				t.Fatal(err)
			}
			if !group.Verify(msg, sig) {
				t.Fatal("signature does not verify")
			}
		})
	}
}

// alwaysExclude makes the bias pair fire unconditionally.
var alwaysExclude dkg.ExclusionRule = func(map[int][][][]*bn254.G2) bool { return true }
