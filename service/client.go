package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
)

// Client talks to a coordinator (or, for FetchPubkey, any signer — both
// serve /v1/pubkey with the same schema).
//
// Deprecated: use the repro/client package, which adds a pluggable
// Transport and typed error mapping. This shim remains for one release.
type Client struct {
	BaseURL string
	HTTP    *http.Client // nil means http.DefaultClient
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP == nil {
		return http.DefaultClient
	}
	return c.HTTP
}

// Sign requests a full threshold signature on msg from the coordinator.
func (c *Client) Sign(ctx context.Context, msg []byte) (*core.Signature, *SignatureResponse, error) {
	body, err := json.Marshal(SignRequest{Message: msg})
	if err != nil {
		return nil, nil, err
	}
	var sr SignatureResponse
	if err := c.postJSON(ctx, "/v1/sign", body, &sr); err != nil {
		return nil, nil, err
	}
	sig := new(core.Signature)
	if err := sig.Unmarshal(sr.Signature); err != nil {
		return nil, nil, fmt.Errorf("service: coordinator returned malformed signature: %w", err)
	}
	return sig, &sr, nil
}

// SignBatch requests threshold signatures for every message in one
// round-trip to the coordinator's /v1/sign-batch endpoint. sigs[j] is
// the signature for msgs[j], or nil when that message failed — the
// per-message error strings are in the returned response. The error is
// non-nil only for transport- or request-level failures.
func (c *Client) SignBatch(ctx context.Context, msgs [][]byte) ([]*core.Signature, *SignBatchResponse, error) {
	body, err := json.Marshal(SignBatchRequest{Messages: msgs})
	if err != nil {
		return nil, nil, err
	}
	var br SignBatchResponse
	if err := c.postJSON(ctx, "/v1/sign-batch", body, &br); err != nil {
		return nil, nil, err
	}
	if len(br.Results) != len(msgs) {
		return nil, nil, fmt.Errorf("service: coordinator answered %d results for %d messages", len(br.Results), len(msgs))
	}
	sigs := make([]*core.Signature, len(msgs))
	for j, res := range br.Results {
		if res.Error != "" {
			continue
		}
		sig := new(core.Signature)
		if err := sig.Unmarshal(res.Signature); err != nil {
			return nil, nil, fmt.Errorf("service: coordinator returned malformed signature for message %d: %w", j, err)
		}
		sigs[j] = sig
	}
	return sigs, &br, nil
}

// FetchPubkey retrieves the group description and reconstructs the
// public key (parameters are rebuilt from the domain label, exactly as
// every server derives them).
func (c *Client) FetchPubkey(ctx context.Context) (*core.PublicKey, *PubkeyResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/pubkey", nil)
	if err != nil {
		return nil, nil, err
	}
	var pr PubkeyResponse
	if err := c.doJSON(req, &pr); err != nil {
		return nil, nil, err
	}
	pk, err := core.UnmarshalPublicKey(core.NewParams(pr.Domain), pr.PK)
	if err != nil {
		return nil, nil, fmt.Errorf("service: malformed public key from %s: %w", c.BaseURL, err)
	}
	return pk, &pr, nil
}

func (c *Client) postJSON(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.doJSON(req, out)
}

func (c *Client) doJSON(req *http.Request, out any) error {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			return fmt.Errorf("service: %s: %s (status %d)", req.URL.Path, er.Error, resp.StatusCode)
		}
		return fmt.Errorf("service: %s: status %d: %s", req.URL.Path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}
