package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
)

// Client is a minimal test-only HTTP client for the gateway endpoints.
// (The production client lives in repro/client, which this package cannot
// import without a cycle; the former service.Client shim was removed.)
type Client struct {
	BaseURL string
}

func (c *Client) Sign(ctx context.Context, msg []byte) (*core.Signature, *SignatureResponse, error) {
	body, err := json.Marshal(SignRequest{Message: msg})
	if err != nil {
		return nil, nil, err
	}
	var sr SignatureResponse
	if err := c.postJSON(ctx, "/v1/sign", body, &sr); err != nil {
		return nil, nil, err
	}
	sig := new(core.Signature)
	if err := sig.Unmarshal(sr.Signature); err != nil {
		return nil, nil, fmt.Errorf("test client: malformed signature: %w", err)
	}
	return sig, &sr, nil
}

func (c *Client) SignBatch(ctx context.Context, msgs [][]byte) ([]*core.Signature, *SignBatchResponse, error) {
	body, err := json.Marshal(SignBatchRequest{Messages: msgs})
	if err != nil {
		return nil, nil, err
	}
	var br SignBatchResponse
	if err := c.postJSON(ctx, "/v1/sign-batch", body, &br); err != nil {
		return nil, nil, err
	}
	if len(br.Results) != len(msgs) {
		return nil, nil, fmt.Errorf("test client: %d results for %d messages", len(br.Results), len(msgs))
	}
	sigs := make([]*core.Signature, len(msgs))
	for j, res := range br.Results {
		if res.Error != "" {
			continue
		}
		sig := new(core.Signature)
		if err := sig.Unmarshal(res.Signature); err != nil {
			return nil, nil, fmt.Errorf("test client: malformed signature for message %d: %w", j, err)
		}
		sigs[j] = sig
	}
	return sigs, &br, nil
}

func (c *Client) FetchPubkey(ctx context.Context) (*core.PublicKey, *PubkeyResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/pubkey", nil)
	if err != nil {
		return nil, nil, err
	}
	var pr PubkeyResponse
	if err := c.doJSON(req, &pr); err != nil {
		return nil, nil, err
	}
	pk, err := core.UnmarshalPublicKey(core.NewParams(pr.Domain), pr.PK)
	if err != nil {
		return nil, nil, fmt.Errorf("test client: malformed public key: %w", err)
	}
	return pk, &pr, nil
}

func (c *Client) postJSON(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.doJSON(req, out)
}

func (c *Client) doJSON(req *http.Request, out any) error {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			return fmt.Errorf("test client: %s: %s (status %d)", req.URL.Path, er.Error, resp.StatusCode)
		}
		return fmt.Errorf("test client: %s: status %d: %s", req.URL.Path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}
