package service

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Typed sentinel errors of the service layer. Handlers map them onto the
// machine-readable Code field of every non-2xx ErrorResponse, and the
// public client package maps the codes back, so errors.Is works across
// the process boundary. The values are aliases of the canonical
// sentinels in the scheme's leaf package, so the pure-crypto facade can
// re-export the same identities without depending on this package.
var (
	// ErrEmptyMessage rejects sign requests without a message before any
	// signer is contacted; the HTTP layer maps it to 400.
	ErrEmptyMessage = core.ErrEmptyMessage

	// ErrQuorumUnreachable is wrapped by every QuorumError: a fan-out
	// ended with fewer than t+1 valid shares.
	ErrQuorumUnreachable = core.ErrQuorumUnreachable

	// ErrOverloaded marks load shedding: the signer's worker pool and
	// wait queue are full and the request was refused. Retry elsewhere or
	// later.
	ErrOverloaded = core.ErrOverloaded

	// ErrBatchTooLarge rejects batch requests with more messages than the
	// configured MaxBatch.
	ErrBatchTooLarge = core.ErrBatchTooLarge

	// ErrNoKeyMaterial marks an operation that needs key material a
	// keyless daemon does not hold yet (sign before keygen, refresh
	// before keygen, pubkey of an empty coordinator).
	ErrNoKeyMaterial = core.ErrNoKeyMaterial

	// ErrProtocolFailed marks a distributed keygen or refresh session
	// that could not complete.
	ErrProtocolFailed = core.ErrProtocolFailed
)

// Protocol-session sentinels of the service layer itself: they concern
// the HTTP session machinery rather than the scheme, so they live here
// and are carried across the wire by their codes.
var (
	// ErrSessionNotFound: a step or finish request named a protocol
	// session this daemon does not host (expired, finished, or never
	// started).
	ErrSessionNotFound = errors.New("service: protocol session not found")

	// ErrConflict: a request contradicts the daemon's state — starting a
	// keygen on a signer that already holds key material, stepping a
	// session out of round order, or re-running keygen on a keyed
	// coordinator.
	ErrConflict = errors.New("service: conflicting request")

	// ErrUnknownGroup: a namespaced request named a group ID the daemon's
	// registry has never seen. Minting it is explicit — a DKG run against
	// the ID — so a typo in a group ID cannot silently create a tenant.
	ErrUnknownGroup = errors.New("service: unknown group")

	// ErrGroupDeleted: the group ID is tombstoned. Tombstones are
	// permanent — a deleted ID is never reusable, so a client holding a
	// stale ID can never be served a different tenant's key.
	ErrGroupDeleted = errors.New("service: group deleted")
)

// Machine-readable error codes carried in ErrorResponse.Code. They are
// part of the wire protocol: clients map them back onto the sentinel
// errors above (and core.ErrInvalidShare and friends), so string matching
// on error messages is never needed.
const (
	CodeBadRequest       = "bad_request"
	CodeEmptyMessage     = "empty_message"
	CodeBatchTooLarge    = "batch_too_large"
	CodeOverloaded       = "overloaded"
	CodeQuorum           = "quorum_unreachable"
	CodeCanceled         = "canceled"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeBackend          = "backend_failure"
	CodeNoKey            = "no_key_material"
	CodeProtoFailed      = "protocol_failed"
	CodeSessionNotFound  = "session_not_found"
	CodeConflict         = "conflict"
	CodeUnknownGroup     = "unknown_group"
	CodeGroupDeleted     = "group_deleted"
	// CodeQuorumInvalidShares is CodeQuorum with Byzantine evidence: the
	// fan-out fell below t+1 valid shares AND at least one signer
	// answered with an invalid share.
	CodeQuorumInvalidShares = "quorum_unreachable_invalid_shares"
)

// QuorumError reports a fan-out that ended below t+1 valid shares. It
// wraps ErrQuorumUnreachable, and additionally core.ErrInvalidShare when
// Byzantine shares were among the answers.
type QuorumError struct {
	Need, Valid int
	Invalid     []int
	Unreachable []int
}

func (e *QuorumError) Error() string {
	return fmt.Sprintf("service: quorum not reached: %d valid shares, need %d (unreachable signers: %v, invalid shares: %v)",
		e.Valid, e.Need, e.Unreachable, e.Invalid)
}

// Unwrap lets errors.Is see through to the sentinels.
func (e *QuorumError) Unwrap() []error {
	out := []error{ErrQuorumUnreachable, core.ErrInsufficientShares}
	if len(e.Invalid) > 0 {
		out = append(out, core.ErrInvalidShare)
	}
	return out
}

// errorCode classifies an error into its wire code; the zero string means
// "no specific code" (the handler picks its default).
func errorCode(err error) string {
	switch {
	case errors.Is(err, ErrEmptyMessage):
		return CodeEmptyMessage
	case errors.Is(err, ErrBatchTooLarge):
		return CodeBatchTooLarge
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrQuorumUnreachable) && errors.Is(err, core.ErrInvalidShare):
		return CodeQuorumInvalidShares
	case errors.Is(err, ErrQuorumUnreachable):
		return CodeQuorum
	case errors.Is(err, ErrNoKeyMaterial):
		return CodeNoKey
	case errors.Is(err, ErrSessionNotFound):
		return CodeSessionNotFound
	case errors.Is(err, ErrGroupDeleted):
		return CodeGroupDeleted
	case errors.Is(err, ErrUnknownGroup):
		return CodeUnknownGroup
	case errors.Is(err, ErrConflict):
		return CodeConflict
	case errors.Is(err, ErrProtocolFailed):
		return CodeProtoFailed
	default:
		return ""
	}
}
