package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func postSign(t *testing.T, url string, msg []byte) *http.Response {
	t.Helper()
	body, _ := json.Marshal(SignRequest{Message: msg})
	resp, err := http.Post(url+"/v1/sign", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSignerProducesValidPartial(t *testing.T) {
	f := testFixture(t)
	srv := httptest.NewServer(newTestSigner(t, f, 2))
	defer srv.Close()

	msg := []byte("signer unit test")
	resp := postSign(t, srv.URL, msg)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pr PartialResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Index != 2 {
		t.Fatalf("index %d, want 2", pr.Index)
	}
	ps, err := core.UnmarshalPartialSignature(pr.Partial)
	if err != nil {
		t.Fatal(err)
	}
	if !core.ShareVerify(f.group.PK, f.group.VKs[2], msg, ps) {
		t.Fatal("partial signature does not verify")
	}
}

func TestSignerMetadataEndpoints(t *testing.T) {
	f := testFixture(t)
	srv := httptest.NewServer(newTestSigner(t, f, 5))
	defer srv.Close()

	var pk PubkeyResponse
	getJSON(t, srv.URL+"/v1/pubkey", &pk)
	if pk.N != fixN || pk.T != fixT || pk.Domain != f.group.Domain {
		t.Fatalf("pubkey metadata %+v", pk)
	}
	decoded, err := core.UnmarshalPublicKey(core.NewParams(pk.Domain), pk.PK)
	if err != nil {
		t.Fatal(err)
	}
	if !decoded.Equal(f.group.PK) {
		t.Fatal("advertised public key differs from the group's")
	}

	var vk VKResponse
	getJSON(t, srv.URL+"/v1/vk", &vk)
	if vk.Index != 5 {
		t.Fatalf("vk index %d", vk.Index)
	}
	decodedVK, err := core.UnmarshalVerificationKey(vk.VK)
	if err != nil {
		t.Fatal(err)
	}
	if !decodedVK.Equal(f.group.VKs[5]) {
		t.Fatal("advertised VK differs from the group's")
	}

	var h HealthResponse
	getJSON(t, srv.URL+"/healthz", &h)
	if h.Status != "ok" || h.Index != 5 {
		t.Fatalf("health %+v", h)
	}
}

func TestSignerRejectsMalformedRequest(t *testing.T) {
	f := testFixture(t)
	srv := httptest.NewServer(newTestSigner(t, f, 1))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/sign", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestSignerShedsLoadWhenSaturated(t *testing.T) {
	f := testFixture(t)
	s, err := NewSigner(f.group, f.shares[1], SignerConfig{MaxWorkers: 1, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	// A large message makes each Share-Sign slow enough that a burst of
	// concurrent requests must overflow the 1-worker/1-queued budget.
	msg := bytes.Repeat([]byte("x"), 1<<19)
	const burst = 24
	var ok, shed atomic.Int64
	var start, done sync.WaitGroup
	start.Add(1)
	for range burst {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			resp := postSign(t, srv.URL, msg)
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusServiceUnavailable:
				shed.Add(1)
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}()
	}
	start.Done()
	done.Wait()
	if ok.Load() == 0 {
		t.Fatal("no request succeeded under load")
	}
	if shed.Load() == 0 {
		t.Fatal("saturated signer shed no load (expected some 503s)")
	}
	t.Logf("burst=%d ok=%d shed=%d", burst, ok.Load(), shed.Load())
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
