package service

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dkg"
	"repro/internal/engine"
	"repro/service/metrics"
)

// This file is the signer-side session layer of the networked protocol
// engine: the endpoints through which a signer daemon participates in a
// distributed keygen or proactive refresh. The daemon hosts one protocol
// session per kind at a time; the coordinator (or any driver speaking the
// same schema) creates it with start, advances it round by round with
// step, and collects the outcome with finish:
//
//	POST /v1/proto/{dkg|refresh}/start  ProtoStartRequest  -> ProtoStartResponse
//	POST /v1/proto/{dkg|refresh}/step   ProtoStepRequest   -> ProtoStepResponse
//	POST /v1/proto/{dkg|refresh}/finish ProtoFinishRequest -> ProtoFinishResponse
//
// The player state machine behind a session is exactly the one the
// in-process simulator runs (internal/dkg over internal/engine), so the
// local and networked protocol paths cannot drift. The daemon's PRIVATE
// outputs never leave the machine: finish returns only the public group
// description, while the private share is installed into the signer's
// serving state and persisted through its keyfile hook.
//
// Sessions are garbage collected: a session untouched for the host's TTL
// is evicted (lazily, on the next session request), so a crashed driver
// cannot leak player state forever.

// Protocol kinds hosted by the session layer.
const (
	// ProtoDKG is the distributed key generation of Section 3.1:
	// Pedersen's DKG over two parallel sharings, no trusted dealer.
	ProtoDKG = "dkg"
	// ProtoRefresh is the proactive refresh of Section 3.3: a zero-
	// sharing DKG whose outcome every member applies locally.
	ProtoRefresh = "refresh"
)

// ProtoMessage is one protocol message on the wire. From is meaningful
// only on delivery (the coordinator stamps the authenticated sender); To
// is a 1-based player index or -1 for broadcast.
type ProtoMessage struct {
	From    int    `json:"from,omitempty"`
	To      int    `json:"to"`
	Round   int    `json:"round,omitempty"`
	Kind    string `json:"kind"`
	Payload []byte `json:"payload,omitempty"`
}

func toWireMessages(msgs []engine.Message) []ProtoMessage {
	out := make([]ProtoMessage, len(msgs))
	for i, m := range msgs {
		out[i] = ProtoMessage{From: m.From, To: m.To, Round: m.Round, Kind: m.Kind, Payload: m.Payload}
	}
	return out
}

func fromWireMessages(msgs []ProtoMessage) []engine.Message {
	out := make([]engine.Message, len(msgs))
	for i, m := range msgs {
		out[i] = engine.Message{From: m.From, To: m.To, Round: m.Round, Kind: m.Kind, Payload: m.Payload}
	}
	return out
}

// ProtoStartRequest opens a protocol session on a signer daemon. Index
// must equal the daemon's own player index (the coordinator derives it
// from the signer's position in its URL list); N, T and Domain fix the
// protocol parameters — for a refresh they must match the key material
// the daemon already holds.
type ProtoStartRequest struct {
	Session string `json:"session"`
	N       int    `json:"n"`
	T       int    `json:"t"`
	Index   int    `json:"index"`
	Domain  string `json:"domain,omitempty"`
	// GroupHash (refresh only) is the SHA-256 of Group.Marshal for the
	// group the driver is refreshing. A daemon whose key material hashes
	// differently — e.g. it missed an earlier epoch and holds stale
	// shares — refuses the session with CodeConflict and is excluded
	// up front, BEFORE it could apply the epoch to a divergent base and
	// end up disagreeing with everybody at finish time.
	GroupHash []byte `json:"group_hash,omitempty"`
	// Epoch (DKG only) authorizes a key ROTATION: a keyed signer refuses
	// a keygen unless Epoch is strictly greater than its registry
	// record's epoch, so a replayed or stale rotation request cannot
	// regenerate a key behind the current one. Zero (the pre-tenancy
	// wire form) means a fresh mint, allowed only on a keyless tenant.
	Epoch uint64 `json:"epoch,omitempty"`
}

// ProtoStartResponse carries the player's round-0 messages.
type ProtoStartResponse struct {
	Messages []ProtoMessage `json:"messages"`
	Done     bool           `json:"done,omitempty"`
}

// ProtoStepRequest delivers one round's inbox to the session's player.
// Round must be exactly one past the last executed round — out-of-order
// or replayed steps are answered with CodeConflict, so a retrying driver
// cannot double-step a state machine.
type ProtoStepRequest struct {
	Session  string         `json:"session"`
	Round    int            `json:"round"`
	Messages []ProtoMessage `json:"messages"`
}

// ProtoStepResponse carries the player's outgoing messages for the round
// and its completion status.
type ProtoStepResponse struct {
	Messages []ProtoMessage `json:"messages"`
	Done     bool           `json:"done,omitempty"`
}

// ProtoFinishRequest closes a completed session and asks for its public
// outcome.
type ProtoFinishRequest struct {
	Session string `json:"session"`
}

// ProtoFinishResponse is the public outcome of a finished session: the
// daemon's index, the qualified dealer set, and the resulting group
// description (core.Group.Marshal bytes — public key material only; the
// private share stays on the daemon). Every honest participant of one
// session returns byte-identical Group bytes.
type ProtoFinishResponse struct {
	Index int    `json:"index"`
	Qual  []int  `json:"qual"`
	Group []byte `json:"group"`
}

// ProtoRunRequest asks a coordinator to drive a whole protocol run across
// its signers (POST /v1/proto/{dkg|refresh}/run). T and Domain configure
// a keygen (n is the coordinator's signer count); both are ignored for a
// refresh, which takes its parameters from the group the coordinator
// already serves.
type ProtoRunRequest struct {
	T      int    `json:"t,omitempty"`
	Domain string `json:"domain,omitempty"`
	// Rotate (DKG only) authorizes replacing an EXISTING group's key with
	// a freshly generated one: the coordinator bumps the tenant's epoch
	// and drives a new keygen across the fleet. Without it, a keygen
	// against a keyed group is a conflict.
	Rotate bool `json:"rotate,omitempty"`
}

// ProtoRunResponse reports a completed protocol run: the session id, the
// number of executed rounds, the qualified dealer set, the signers that
// were excluded as crashed, and the resulting public group description.
type ProtoRunResponse struct {
	Session string `json:"session"`
	Rounds  int    `json:"rounds"`
	Qual    []int  `json:"qual,omitempty"`
	Crashed []int  `json:"crashed,omitempty"`
	Group   []byte `json:"group"`
}

// protoSession is one hosted protocol session: the player state machine
// plus the round cursor guarding against replays.
type protoSession struct {
	proto    string
	id       string
	n, t     int
	domain   string
	params   *core.Params
	player   engine.Player
	honest   *dkg.HonestPlayer // nil for injected adversarial players (tests)
	round    int               // next expected round
	failed   bool
	lastUsed time.Time
}

// playerFactory builds the session's state machine. The default produces
// the honest DKG player; tests substitute Byzantine implementations to
// exercise the networked engine against adversaries.
type playerFactory func(proto string, cfg dkg.Config, id int) (engine.Player, *dkg.HonestPlayer, error)

func honestPlayerFactory(_ string, cfg dkg.Config, id int) (engine.Player, *dkg.HonestPlayer, error) {
	hp, err := dkg.NewHonestPlayer(cfg, id)
	if err != nil {
		return nil, nil, err
	}
	return hp, hp, nil
}

// DefaultSessionTTL is how long an untouched protocol session survives
// before the garbage collector evicts it.
const DefaultSessionTTL = 2 * time.Minute

// protoHost hosts a signer daemon's protocol sessions: at most one per
// protocol kind, TTL-evicted when a driver disappears mid-run.
type protoHost struct {
	mu        sync.Mutex
	sessions  map[string]*protoSession // keyed by protocol kind
	ttl       time.Duration
	now       func() time.Time
	factory   playerFactory
	evictions *metrics.Counter // nil-safe; shared across a daemon's tenants
}

func newProtoHost(ttl time.Duration, evictions *metrics.Counter) *protoHost {
	if ttl <= 0 {
		ttl = DefaultSessionTTL
	}
	return &protoHost{
		sessions:  make(map[string]*protoSession),
		ttl:       ttl,
		now:       time.Now,
		factory:   honestPlayerFactory,
		evictions: evictions,
	}
}

// gc evicts expired sessions. Callers must hold h.mu.
func (h *protoHost) gc() {
	cutoff := h.now().Add(-h.ttl)
	for proto, sess := range h.sessions {
		if sess.lastUsed.Before(cutoff) {
			delete(h.sessions, proto)
			h.evictions.Inc()
		}
	}
}

// create registers a new session for the protocol kind. Re-starting the
// SAME session id is a conflict (a retrying driver must not reset a
// state machine it already stepped); a start under a fresh id REPLACES
// any existing session of the kind — the daemon trusts whoever drives it
// (see the ROADMAP auth open item), and an aborted run must not lock the
// slot until the TTL. The replaced session's steps answer 404.
func (h *protoHost) create(sess *protoSession) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.gc()
	if cur, ok := h.sessions[sess.proto]; ok && cur.id == sess.id {
		return fmt.Errorf("service: %s session %q already started: %w", cur.proto, cur.id, ErrConflict)
	}
	sess.lastUsed = h.now()
	h.sessions[sess.proto] = sess
	return nil
}

// lookup finds a session by kind and id and touches its GC clock. The
// caller must hold h.mu — and keep holding it while using the session,
// so a concurrent replacing start cannot slip in between lookup and use
// (a replaced session must answer 404, never act on stale state).
func (h *protoHost) lookup(proto, id string) (*protoSession, error) {
	h.gc()
	sess, ok := h.sessions[proto]
	if !ok || sess.id != id {
		return nil, fmt.Errorf("service: no %s session %q: %w", proto, id, ErrSessionNotFound)
	}
	sess.lastUsed = h.now()
	return sess, nil
}

// handleProtoStart opens a session of the given protocol kind on the
// signer.
func (s *Signer) handleProtoStart(proto string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxProtoRequestBytes)
		var req ProtoStartRequest
		if err := decodeJSON(r, &req); err != nil {
			writeErrorCode(w, http.StatusBadRequest, CodeBadRequest, err.Error())
			return
		}
		if req.Session == "" {
			writeErrorCode(w, http.StatusBadRequest, CodeBadRequest, "missing session id")
			return
		}
		if req.T < 1 || req.N < 2*req.T+1 {
			writeErrorCode(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("bad protocol size n=%d t=%d (need t >= 1 and n >= 2t+1)", req.N, req.T))
			return
		}
		if req.Index != s.index {
			writeErrorCode(w, http.StatusConflict, CodeConflict,
				fmt.Sprintf("start addressed to index %d, but this signer is %d", req.Index, s.index))
			return
		}
		// Tenant resolution happens only after the body validated: a
		// malformed start request against an unknown group ID must not
		// register a junk tenant. Only a DKG start may mint one.
		tn, err := s.tenant(r.PathValue("gid"), proto == ProtoDKG)
		if err != nil {
			writeGroupError(w, err)
			return
		}

		var params *core.Params
		st := tn.state.Load()
		switch proto {
		case ProtoDKG:
			if st != nil {
				// A keyed tenant accepts a keygen only as an explicit
				// rotation: the driver must present an epoch strictly
				// beyond the record's, so replays and stale rotation
				// attempts are refused.
				rec, _ := s.reg.Get(tn.id)
				if req.Epoch == 0 || req.Epoch <= rec.Epoch {
					writeErrorCode(w, http.StatusConflict, CodeConflict,
						"signer already holds key material; a fresh keygen needs fresh daemons (or a rotation with a higher epoch)")
					return
				}
			}
			if req.Domain == "" {
				writeErrorCode(w, http.StatusBadRequest, CodeBadRequest, "missing domain label")
				return
			}
			params = core.NewParams(req.Domain)
		case ProtoRefresh:
			if st == nil {
				writeErrorCode(w, http.StatusServiceUnavailable, CodeNoKey,
					"signer holds no key material to refresh")
				return
			}
			if req.N != st.group.N || req.T != st.group.T {
				writeErrorCode(w, http.StatusConflict, CodeConflict,
					fmt.Sprintf("refresh for n=%d t=%d, but this signer's group is n=%d t=%d",
						req.N, req.T, st.group.N, st.group.T))
				return
			}
			if req.Domain != "" && req.Domain != st.group.Domain {
				writeErrorCode(w, http.StatusConflict, CodeConflict,
					fmt.Sprintf("refresh for domain %q, but this signer's group is %q", req.Domain, st.group.Domain))
				return
			}
			if len(req.GroupHash) > 0 {
				h := sha256.Sum256(st.group.Marshal())
				if !bytes.Equal(req.GroupHash, h[:]) {
					writeErrorCode(w, http.StatusConflict, CodeConflict,
						"refresh is for a different group state; this signer's key material is stale (recover the share first)")
					return
				}
			}
			params = st.group.Params
		default:
			writeErrorCode(w, http.StatusBadRequest, CodeBadRequest, "unknown protocol "+proto)
			return
		}

		cfg := dkg.Config{
			N: req.N, T: req.T, NumSharings: core.Dim,
			Scheme:  dkg.PedersenScheme{Params: params.LH},
			Refresh: proto == ProtoRefresh,
		}
		player, honest, err := tn.proto.factory(proto, cfg, s.index)
		if err != nil {
			writeErrorCode(w, http.StatusBadRequest, CodeBadRequest, err.Error())
			return
		}
		sess := &protoSession{
			proto: proto, id: req.Session,
			n: req.N, t: req.T, domain: req.Domain,
			params: params, player: player, honest: honest,
		}
		if proto == ProtoRefresh && sess.domain == "" {
			sess.domain = st.group.Domain
		}
		// Round 0 runs before the session is published, so a concurrent
		// step can never reach a half-initialized state machine; create()
		// makes the fully-initialized session visible atomically.
		stepStart := time.Now()
		out, err := sess.player.Step(0, nil)
		s.met.stepSeconds.Observe(time.Since(stepStart).Seconds())
		if err != nil {
			writeErrorCode(w, http.StatusInternalServerError, CodeProtoFailed, err.Error())
			return
		}
		sess.round = 1
		if err := tn.proto.create(sess); err != nil {
			writeErrorCode(w, http.StatusConflict, CodeConflict, err.Error())
			return
		}
		s.met.sessionStarts.WithLabelValues(proto).Inc()
		s.log.Debug("protocol session started",
			"request_id", RequestIDFromContext(r.Context()),
			"gid", tn.id, "proto", proto, "session", req.Session, "n", req.N, "t", req.T)
		writeJSON(w, http.StatusOK, ProtoStartResponse{
			Messages: toWireMessages(out),
			Done:     sess.player.Done(),
		})
	}
}

// handleProtoStep advances a session by one round.
func (s *Signer) handleProtoStep(proto string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxProtoRequestBytes)
		var req ProtoStepRequest
		if err := decodeJSON(r, &req); err != nil {
			writeErrorCode(w, http.StatusBadRequest, CodeBadRequest, err.Error())
			return
		}
		tn, err := s.tenant(r.PathValue("gid"), false)
		if err != nil {
			writeGroupError(w, err)
			return
		}
		// The host lock covers lookup AND the step itself, so a session
		// replaced by a newer start can never be stepped afterwards
		// (sessions are driven by one coordinator; contention is not a
		// concern).
		tn.proto.mu.Lock()
		defer tn.proto.mu.Unlock()
		sess, err := tn.proto.lookup(proto, req.Session)
		if err != nil {
			writeErrorCode(w, http.StatusNotFound, CodeSessionNotFound, err.Error())
			return
		}
		if sess.failed {
			writeErrorCode(w, http.StatusInternalServerError, CodeProtoFailed, "session already failed")
			return
		}
		if req.Round != sess.round {
			writeErrorCode(w, http.StatusConflict, CodeConflict,
				fmt.Sprintf("step for round %d, session expects round %d", req.Round, sess.round))
			return
		}
		// Defense in depth: deliver only messages actually addressed to
		// this player, no matter what the driver put in the batch.
		delivered := make([]engine.Message, 0, len(req.Messages))
		for _, m := range fromWireMessages(req.Messages) {
			if m.To == engine.Broadcast || m.To == s.index {
				delivered = append(delivered, m)
			}
		}
		stepStart := time.Now()
		out, err := sess.player.Step(req.Round, delivered)
		s.met.stepSeconds.Observe(time.Since(stepStart).Seconds())
		s.met.sessionSteps.WithLabelValues(proto).Inc()
		if err != nil {
			sess.failed = true
			writeErrorCode(w, http.StatusInternalServerError, CodeProtoFailed, err.Error())
			return
		}
		sess.round++
		writeJSON(w, http.StatusOK, ProtoStepResponse{
			Messages: toWireMessages(out),
			Done:     sess.player.Done(),
		})
	}
}

// handleProtoFinish closes a completed session: it installs (and
// persists) the resulting key material into the signer's serving state
// and returns the public group description.
func (s *Signer) handleProtoFinish(proto string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxProtoRequestBytes)
		var req ProtoFinishRequest
		if err := decodeJSON(r, &req); err != nil {
			writeErrorCode(w, http.StatusBadRequest, CodeBadRequest, err.Error())
			return
		}
		tn, err := s.tenant(r.PathValue("gid"), false)
		if err != nil {
			writeGroupError(w, err)
			return
		}
		// The host lock covers lookup, install, and removal, so a finish
		// can neither act on a session a newer start has replaced nor
		// delete the replacement.
		tn.proto.mu.Lock()
		defer tn.proto.mu.Unlock()
		sess, err := tn.proto.lookup(proto, req.Session)
		if err != nil {
			writeErrorCode(w, http.StatusNotFound, CodeSessionNotFound, err.Error())
			return
		}
		if sess.honest == nil || !sess.player.Done() {
			writeErrorCode(w, http.StatusConflict, CodeConflict, "protocol not finished")
			return
		}
		res, err := sess.honest.Result()
		if err != nil {
			writeErrorCode(w, http.StatusInternalServerError, CodeProtoFailed, err.Error())
			return
		}

		var group *core.Group
		var share *core.PrivateKeyShare
		switch proto {
		case ProtoDKG:
			view, err := core.FromDKGResult(sess.params, res)
			if err != nil {
				writeErrorCode(w, http.StatusInternalServerError, CodeProtoFailed, err.Error())
				return
			}
			if group, err = core.NewGroup(sess.domain, sess.n, sess.t, view); err != nil {
				writeErrorCode(w, http.StatusInternalServerError, CodeProtoFailed, err.Error())
				return
			}
			share = view.Share
		case ProtoRefresh:
			st := tn.state.Load()
			if st == nil {
				writeErrorCode(w, http.StatusServiceUnavailable, CodeNoKey, "key material disappeared mid-refresh")
				return
			}
			view := &core.KeyShares{PK: st.group.PK, Share: st.share, VKs: st.group.VKs}
			next, err := core.ApplyRefresh(view, res)
			if err != nil {
				writeErrorCode(w, http.StatusInternalServerError, CodeProtoFailed, err.Error())
				return
			}
			group = &core.Group{
				Domain: st.group.Domain, N: st.group.N, T: st.group.T,
				Params: st.group.Params, PK: next.PK, VKs: next.VKs,
			}
			share = next.Share
		}

		// Persist BEFORE installing: if the keystore write fails the
		// session stays open, the daemon keeps serving its previous state,
		// and the driver sees the failure instead of a daemon whose disk
		// and memory disagree after a restart. The registry record is
		// updated in the same window — the epoch bump is what gates
		// replayed rotation attempts.
		if err := s.persistTenant(tn, group, share); err != nil {
			writeErrorCode(w, http.StatusInternalServerError, CodeBackend,
				fmt.Sprintf("persisting key material: %v", err))
			return
		}
		rec, _ := s.reg.Get(tn.id)
		rec.ID = tn.id
		rec.Domain, rec.N, rec.T = group.Domain, group.N, group.T
		rec.Epoch++
		if err := s.reg.Put(rec); err != nil {
			writeErrorCode(w, http.StatusInternalServerError, CodeBackend,
				fmt.Sprintf("persisting group record: %v", err))
			return
		}
		tn.state.Store(&signerState{group: group, share: share})
		warmGroup(group, s.met.precomputeRebuilds)
		delete(tn.proto.sessions, proto)
		s.met.sessionFinishes.WithLabelValues(proto).Inc()
		s.log.Info("protocol session finished, key material installed",
			"request_id", RequestIDFromContext(r.Context()),
			"gid", tn.id, "proto", proto, "session", req.Session, "epoch", rec.Epoch)
		writeJSON(w, http.StatusOK, ProtoFinishResponse{
			Index: s.index,
			Qual:  res.Qual,
			Group: group.Marshal(),
		})
	}
}

// persistTenant writes a tenant's new key material through to durable
// storage: the legacy Persist hook fires for the default group, and the
// registry keystore (a no-op when memory-only) covers every tenant.
func (s *Signer) persistTenant(tn *signerTenant, g *core.Group, sk *core.PrivateKeyShare) error {
	if tn.id == DefaultGroupID && s.persist != nil {
		if err := s.persist(g, sk); err != nil {
			return err
		}
	}
	return s.reg.SaveMember(tn.id, g, sk)
}
