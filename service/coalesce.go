package service

import (
	"context"
	"errors"
	"sync"

	"repro/service/metrics"
)

// flightGroup collapses concurrent calls for the same key into a single
// execution (the singleflight pattern): the first caller becomes the
// leader and runs fn; followers block until the leader finishes and
// share its result. Because partial signing is deterministic, every
// caller asking for the same message gets byte-identical output, so one
// fan-out to the signers serves them all.
//
// The leader runs fn under its own context; a follower whose context
// expires stops waiting and gets its context error, without disturbing
// the leader.
type flightGroup struct {
	mu sync.Mutex
	m  map[cacheKey]*flightCall

	// coalesced counts callers that joined an existing flight; nil-safe,
	// incremented inside claim so Sign, SignBatch, and the batcher all
	// count through the one choke point.
	coalesced *metrics.Counter
}

type flightCall struct {
	done chan struct{} // closed when the leader finishes
	res  *signOutcome
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[cacheKey]*flightCall)}
}

// claim registers the caller as leader for key when no call is in
// flight, returning leader=true; otherwise it returns the in-flight
// call for the caller to wait on. A leader MUST eventually call finish
// exactly once, or every future call for key deadlocks.
func (g *flightGroup) claim(key cacheKey) (call *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if call, ok := g.m[key]; ok {
		g.coalesced.Inc()
		return call, false
	}
	call = &flightCall{done: make(chan struct{})}
	g.m[key] = call
	return call, true
}

// finish publishes the leader's result for key and wakes the followers.
func (g *flightGroup) finish(key cacheKey, call *flightCall, res *signOutcome, err error) {
	call.res, call.err = res, err
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(call.done)
}

// do returns fn's result for key, and whether this caller coalesced onto
// a leader started by someone else.
func (g *flightGroup) do(ctx context.Context, key cacheKey, fn func() (*signOutcome, error)) (*signOutcome, bool, error) {
	call, leader := g.claim(key)
	if !leader {
		select {
		case <-call.done:
			return call.res, true, call.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	// finish MUST run even if fn panics: otherwise call.done is never
	// closed and the key stays in g.m, deadlocking every future call for
	// this message. The panic still propagates to the leader's caller;
	// followers observe errFlightPanic instead of hanging.
	var (
		res      *signOutcome
		err      error
		finished bool
	)
	defer func() {
		if !finished {
			res, err = nil, errFlightPanic
		}
		g.finish(key, call, res, err)
	}()
	res, err = fn()
	finished = true
	return res, false, err
}

// errFlightPanic is what followers of a coalesced call receive when the
// leader's fn panicked instead of returning.
var errFlightPanic = errors.New("service: in-flight sign call panicked")
