package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/service/registry"
)

// SignerConfig bounds the signer's concurrency. Partial signing costs two
// hash-to-curve operations and two 2-base multi-exponentiations of CPU,
// so unbounded concurrency under heavy traffic only adds scheduler churn;
// beyond MaxWorkers running and MaxQueue waiting, requests are shed with
// 503 so the coordinator can retry elsewhere.
type SignerConfig struct {
	MaxWorkers int // concurrent Share-Sign operations (default 2×GOMAXPROCS via DefaultSignerConfig)
	MaxQueue   int // additional requests allowed to wait for a worker (default 4×MaxWorkers)
	MaxBatch   int // messages accepted per /v1/sign-batch request (default DefaultMaxBatch)
}

// DefaultSignerConfig returns the defaults for missing fields.
func (c SignerConfig) withDefaults() SignerConfig {
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxWorkers
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	return c
}

// signerState is the signer's key material, swapped atomically as one
// unit: the group view and the private share always match.
type signerState struct {
	group *core.Group
	share *core.PrivateKeyShare
}

// Signer serves private key shares over HTTP — one share per tenant
// group, all under the daemon's single player index. It is an
// http.Handler:
//
//	POST /v1/sign       {"message": base64} -> PartialResponse
//	POST /v1/sign-batch {"messages": [base64...]} -> PartialBatchResponse
//	GET  /v1/pubkey     -> PubkeyResponse
//	GET  /v1/vk         -> VKResponse (this signer's own key)
//	GET  /v1/groups     -> GroupsResponse (every registered tenant)
//	GET  /healthz       -> HealthResponse (process liveness)
//	GET  /readyz        -> ReadyResponse (per-group key state)
//	POST /v1/proto/{dkg|refresh}/{start|step|finish} -> protocol sessions
//	DELETE /v1/g/{groupID} -> GroupDeleteResponse (tombstone the tenant)
//
// Every /v1/* route above also exists group-namespaced as
// /v1/g/{groupID}/...; the un-namespaced form is an alias for the
// "default" group, so pre-tenancy clients keep working unchanged. A
// tenant other than the default is minted by running a DKG against its
// ID (see session.go); its key material lives in the registry's
// per-tenant keystore and is faulted back in on demand.
//
// Share-Sign is deterministic and needs no peer interaction, so the
// Signer keeps no per-request state and any number of replicas of the
// same share behave identically.
//
// The key material is not necessarily fixed at construction: a signer
// built with NewDaemonSigner may start with none at all and acquire it by
// participating in a distributed keygen session, and a proactive refresh
// session swaps in the re-randomized share. Key-dependent endpoints
// answer 503/no_key_material until material exists.
type Signer struct {
	index int // the daemon's fixed 1-based player identity
	state atomic.Pointer[signerState]
	cfg   SignerConfig

	// persist, when set, writes new key material through before it is
	// installed (the tsigd keyfile hook). It fires for the DEFAULT group
	// only; other tenants persist through the registry's keystores.
	persist func(*core.Group, *core.PrivateKeyShare) error

	proto      *protoHost
	sessionTTL time.Duration

	// reg is the tenant registry; def is the always-hot default tenant,
	// aliasing the state/proto fields above so the legacy single-group
	// surface and the namespaced one act on the same material.
	reg      *registry.Registry
	tenantMu sync.Mutex // serializes tenant minting and hot-cache fills
	def      *signerTenant

	workers  chan struct{} // semaphore: MaxWorkers slots
	inflight atomic.Int64  // requests holding or waiting for a slot
	mux      *http.ServeMux

	met *signerMetrics
	log *slog.Logger
}

// signerTenant is one tenant's live state on a signer: the key material
// and the protocol-session host. The default tenant aliases the
// Signer's own state/proto fields; others live in the registry's hot
// LRU and are rebuilt from their keystore when faulted back in.
type signerTenant struct {
	id    string
	state *atomic.Pointer[signerState]
	proto *protoHost
}

// NewSigner builds a signer for one share of the given group.
func NewSigner(group *core.Group, share *core.PrivateKeyShare, cfg SignerConfig) (*Signer, error) {
	return NewDaemonSigner(DaemonConfig{Signer: cfg, Group: group, Share: share})
}

// DaemonConfig configures a signer daemon, including the keyless form
// that waits for a distributed keygen.
type DaemonConfig struct {
	// Signer bounds the signing worker pool.
	Signer SignerConfig
	// Index is the daemon's 1-based player identity. Required when no key
	// material is given; otherwise it must be absent or match the share.
	Index int
	// Group and Share are the initial key material; both nil for a
	// keyless daemon.
	Group *core.Group
	Share *core.PrivateKeyShare
	// Persist, when set, is called with new key material (after keygen or
	// refresh) before it is installed; a failure keeps the old state. It
	// applies to the default group only — other tenants persist through
	// Registry.
	Persist func(*core.Group, *core.PrivateKeyShare) error
	// SessionTTL bounds how long an untouched protocol session survives
	// (default DefaultSessionTTL).
	SessionTTL time.Duration
	// Registry is the multi-tenant group registry (tsigd -keystore-dir).
	// Nil means a memory-only registry: tenants can still be minted over
	// the wire, but nothing survives a restart. When file-backed and no
	// explicit Group/Share is given, the default group's key material is
	// loaded from its keystore.
	Registry *registry.Registry
	// Logger receives the daemon's structured logs (request-scoped lines
	// at Debug, lifecycle at Info). Nil means slog.Default().
	Logger *slog.Logger
}

// NewDaemonSigner builds a signer daemon from the full configuration.
func NewDaemonSigner(cfg DaemonConfig) (*Signer, error) {
	index := cfg.Index
	if cfg.Group != nil || cfg.Share != nil {
		if cfg.Group == nil || cfg.Share == nil {
			return nil, fmt.Errorf("service: group and share must be given together")
		}
		if cfg.Share.Index < 1 || cfg.Share.Index > cfg.Group.N {
			return nil, fmt.Errorf("service: share index %d outside group 1..%d", cfg.Share.Index, cfg.Group.N)
		}
		if index == 0 {
			index = cfg.Share.Index
		}
		if index != cfg.Share.Index {
			return nil, fmt.Errorf("service: daemon index %d contradicts share index %d", index, cfg.Share.Index)
		}
	}
	if index < 1 {
		return nil, fmt.Errorf("service: a keyless daemon needs a positive player index")
	}
	reg := cfg.Registry
	if reg == nil {
		var err error
		if reg, err = registry.Open(registry.Config{}); err != nil {
			return nil, err
		}
	}
	s := &Signer{
		index:      index,
		cfg:        cfg.Signer.withDefaults(),
		persist:    cfg.Persist,
		sessionTTL: cfg.SessionTTL,
		reg:        reg,
		log:        cfg.Logger,
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	s.log = s.log.With("component", "signer", "signer", index)
	s.met = newSignerMetrics(s)
	s.proto = newProtoHost(cfg.SessionTTL, s.met.sessionEvictions)
	s.def = &signerTenant{id: registry.DefaultGroup, state: &s.state, proto: s.proto}
	if cfg.Group != nil {
		s.state.Store(&signerState{group: cfg.Group, share: cfg.Share})
		warmGroup(cfg.Group, s.met.precomputeRebuilds)
		// Adopt file-provided key material into the keystore: a later
		// restart from -keystore-dir alone (no -group/-share) must keep
		// serving the default group, and the manifest record written
		// below would otherwise claim a readiness the keystore can't
		// back. No-op for memory-only registries.
		if err := reg.SaveMember(registry.DefaultGroup, cfg.Group, cfg.Share); err != nil {
			return nil, fmt.Errorf("service: adopting default group into the keystore: %w", err)
		}
	} else if m, err := reg.LoadMember(registry.DefaultGroup, index); err == nil {
		st := &signerState{group: m.Group(), share: m.PrivateShare()}
		s.state.Store(st)
		warmGroup(st.group, s.met.precomputeRebuilds)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("service: loading default keystore: %w", err)
	}
	if err := syncDefaultRecord(reg, s.Group()); err != nil {
		return nil, err
	}
	s.workers = make(chan struct{}, s.cfg.MaxWorkers)
	s.mux = http.NewServeMux()
	// Every tenant-scoped route exists twice: un-namespaced (the default
	// group — the pre-tenancy surface, byte-identical) and namespaced
	// under /v1/g/{gid}. PathValue("gid") is "" on the former, which the
	// tenant resolver maps to the default group.
	for _, pre := range []string{"/v1", "/v1/g/{gid}"} {
		s.mux.HandleFunc("POST "+pre+"/sign", s.forTenant(s.handleSign))
		s.mux.HandleFunc("POST "+pre+"/sign-batch", s.forTenant(s.handleSignBatch))
		s.mux.HandleFunc("GET "+pre+"/pubkey", s.forTenant(s.handlePubkey))
		s.mux.HandleFunc("GET "+pre+"/vk", s.forTenant(s.handleVK))
		for _, proto := range []string{ProtoDKG, ProtoRefresh} {
			s.mux.HandleFunc("POST "+pre+"/proto/"+proto+"/start", s.handleProtoStart(proto))
			s.mux.HandleFunc("POST "+pre+"/proto/"+proto+"/step", s.handleProtoStep(proto))
			s.mux.HandleFunc("POST "+pre+"/proto/"+proto+"/finish", s.handleProtoFinish(proto))
		}
		// Any other method on a known path is answered 405 + Allow with a
		// JSON body, not the mux's plain-text default.
		s.mux.HandleFunc(pre+"/sign", methodNotAllowed(http.MethodPost))
		s.mux.HandleFunc(pre+"/sign-batch", methodNotAllowed(http.MethodPost))
		s.mux.HandleFunc(pre+"/pubkey", methodNotAllowed(http.MethodGet))
		s.mux.HandleFunc(pre+"/vk", methodNotAllowed(http.MethodGet))
		for _, proto := range []string{ProtoDKG, ProtoRefresh} {
			for _, ep := range []string{"start", "step", "finish"} {
				s.mux.HandleFunc(pre+"/proto/"+proto+"/"+ep, methodNotAllowed(http.MethodPost))
			}
		}
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /v1/groups", s.handleGroups)
	s.mux.Handle("GET /metrics", s.met.reg)
	s.mux.HandleFunc("DELETE /v1/g/{gid}", s.handleGroupDelete)
	s.mux.HandleFunc("/v1/g/{gid}", methodNotAllowed(http.MethodDelete))
	s.mux.HandleFunc("/healthz", methodNotAllowed(http.MethodGet))
	s.mux.HandleFunc("/readyz", methodNotAllowed(http.MethodGet))
	s.mux.HandleFunc("/v1/groups", methodNotAllowed(http.MethodGet))
	s.mux.HandleFunc("/metrics", methodNotAllowed(http.MethodGet))
	return s, nil
}

// Metrics returns the daemon's metric registry as an http.Handler — the
// same exposition GET /metrics serves, for mounting on a separate debug
// listener (tsigd -debug-addr).
func (s *Signer) Metrics() http.Handler { return s.met.reg }

// syncDefaultRecord reconciles the registry's default-group record with
// the key material the daemon actually holds, creating it on first run.
// An existing epoch is preserved (the registry survives restarts and
// counts keygens across them); a keyed daemon whose record still says
// epoch 0 — legacy keystore, fresh registry — is bumped to 1.
func syncDefaultRecord(reg *registry.Registry, g *core.Group) error {
	rec, ok := reg.Get(registry.DefaultGroup)
	rec.ID = registry.DefaultGroup
	if g != nil {
		rec.Domain, rec.N, rec.T = g.Domain, g.N, g.T
		if rec.Epoch == 0 {
			rec.Epoch = 1
		}
	} else if !ok {
		rec.Epoch = 0
	}
	return reg.Put(rec)
}

// tenant resolves a group ID (the empty string aliases the default
// group) to its live state, faulting cold tenants in from their
// keystores. With create set — used only by the DKG-start path — an
// unknown ID is registered as a new keyless tenant instead of answering
// ErrUnknownGroup. Tombstoned IDs always answer ErrGroupDeleted.
func (s *Signer) tenant(gid string, create bool) (*signerTenant, error) {
	if gid == "" || gid == registry.DefaultGroup {
		if rec, ok := s.reg.Get(registry.DefaultGroup); ok && rec.Deleted {
			return nil, fmt.Errorf("service: group %q is tombstoned: %w", registry.DefaultGroup, ErrGroupDeleted)
		}
		return s.def, nil
	}
	if err := registry.ValidateID(gid); err != nil {
		return nil, err
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	rec, ok := s.reg.Get(gid)
	if ok && rec.Deleted {
		return nil, fmt.Errorf("service: group %q is tombstoned: %w", gid, ErrGroupDeleted)
	}
	if !ok {
		if !create {
			return nil, fmt.Errorf("service: group %q is not registered (mint it with a keygen run): %w", gid, ErrUnknownGroup)
		}
		if err := s.reg.Put(registry.Record{ID: gid}); err != nil {
			return nil, err
		}
	}
	if v, ok := s.reg.HotGet(gid); ok {
		return v.(*signerTenant), nil
	}
	tn := &signerTenant{id: gid, state: new(atomic.Pointer[signerState]), proto: newProtoHost(s.sessionTTL, s.met.sessionEvictions)}
	if m, err := s.reg.LoadMember(gid, s.index); err == nil {
		st := &signerState{group: m.Group(), share: m.PrivateShare()}
		tn.state.Store(st)
		warmGroup(st.group, s.met.precomputeRebuilds)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("service: loading keystore for group %q: %w", gid, err)
	}
	s.reg.HotPut(gid, tn)
	return tn, nil
}

// forTenant adapts a tenant-scoped handler onto the mux: it resolves
// {gid} (or the default group on the un-namespaced routes) and rejects
// unknown, invalid, and tombstoned IDs before the handler runs.
func (s *Signer) forTenant(h func(*signerTenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tn, err := s.tenant(r.PathValue("gid"), false)
		if err != nil {
			writeGroupError(w, err)
			return
		}
		h(tn, w, r)
	}
}

// writeGroupError renders a tenant-resolution failure: 404 for unknown
// IDs, 410 for tombstones, 400 for malformed IDs, 500 otherwise.
func writeGroupError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownGroup):
		writeErrorCode(w, http.StatusNotFound, CodeUnknownGroup, err.Error())
	case errors.Is(err, ErrGroupDeleted):
		writeErrorCode(w, http.StatusGone, CodeGroupDeleted, err.Error())
	case errors.Is(err, registry.ErrInvalidID):
		writeErrorCode(w, http.StatusBadRequest, CodeBadRequest, err.Error())
	default:
		writeErrorCode(w, http.StatusInternalServerError, CodeBackend, err.Error())
	}
}

// groupInfos summarizes every registered tenant for /v1/groups and
// /readyz. Readiness comes from the registry record — registered, not
// tombstoned, at least one completed keygen.
func groupInfos(reg *registry.Registry) (infos []GroupInfo, anyReady bool) {
	recs := reg.List()
	infos = make([]GroupInfo, 0, len(recs))
	for _, rec := range recs {
		ready := !rec.Deleted && rec.Epoch > 0
		anyReady = anyReady || ready
		infos = append(infos, GroupInfo{
			ID: rec.ID, Domain: rec.Domain, N: rec.N, T: rec.T,
			Epoch: rec.Epoch, Deleted: rec.Deleted, Ready: ready,
		})
	}
	return infos, anyReady
}

func (s *Signer) handleGroups(w http.ResponseWriter, _ *http.Request) {
	infos, _ := groupInfos(s.reg)
	writeJSON(w, http.StatusOK, GroupsResponse{Groups: infos})
}

func (s *Signer) handleReady(w http.ResponseWriter, _ *http.Request) {
	infos, ready := groupInfos(s.reg)
	status, state := http.StatusOK, "ready"
	if !ready {
		status, state = http.StatusServiceUnavailable, "unready"
	}
	writeJSON(w, status, ReadyResponse{Status: state, Index: s.index, Groups: infos})
}

// handleGroupDelete tombstones a tenant. Deletion is permanent and the
// ID is never reusable; the keystore files stay on disk (revocation,
// not shredding). Deleting an unknown ID records a tombstone too, so
// the ID cannot be minted afterwards. Idempotent.
func (s *Signer) handleGroupDelete(w http.ResponseWriter, r *http.Request) {
	gid := r.PathValue("gid")
	if err := registry.ValidateID(gid); err != nil {
		writeGroupError(w, err)
		return
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if err := s.reg.Tombstone(gid); err != nil {
		writeErrorCode(w, http.StatusInternalServerError, CodeBackend, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, GroupDeleteResponse{ID: gid})
}

// Index returns the signer's 1-based server index.
func (s *Signer) Index() int { return s.index }

// Group returns the signer's current group view — nil until key material
// exists.
func (s *Signer) Group() *core.Group {
	if st := s.state.Load(); st != nil {
		return st.group
	}
	return nil
}

// keyed loads the tenant's key material, answering 503/no_key_material
// when there is none yet.
func (tn *signerTenant) keyed(w http.ResponseWriter) (*signerState, bool) {
	st := tn.state.Load()
	if st == nil {
		writeErrorCode(w, http.StatusServiceUnavailable, CodeNoKey,
			"signer holds no key material yet (run the distributed keygen)")
		return nil, false
	}
	return st, true
}

func (s *Signer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r, rid := ensureRequestID(r)
	w.Header().Set(HeaderRequestID, rid)
	s.mux.ServeHTTP(w, r)
}

func (s *Signer) handleSign(tn *signerTenant, w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.met.signSeconds.Observe(time.Since(start).Seconds()) }()
	s.met.requests.WithLabelValues(tn.id, "sign").Inc()
	s.log.Debug("sign request",
		"request_id", RequestIDFromContext(r.Context()), "gid", tn.id)
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	var req SignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErrorCode(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("malformed request: %v", err))
		return
	}
	// Mirror of the coordinator's input check: an absent or empty message
	// is the client's fault, not a backend failure.
	if len(req.Message) == 0 {
		writeErrorCode(w, http.StatusBadRequest, CodeEmptyMessage, "missing message")
		return
	}
	st, ok := tn.keyed(w)
	if !ok {
		return
	}
	release, ok := s.acquireWorker(w, r)
	if !ok {
		return
	}
	defer release()

	ps, err := core.ShareSign(st.group.Params, st.share, req.Message)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, PartialResponse{Index: ps.Index, Partial: ps.Marshal()})
}

// handleSignBatch signs a whole batch under ONE admission unit (so at
// most MaxWorkers batches sign concurrently and the per-request message
// count is bounded by MaxBatch), but grabs any idle worker slots
// opportunistically to spread the messages across the pool — a big
// batch must not serialize up to MaxBatch pairing-heavy Share-Sign
// operations while the rest of the pool sits idle. Extra slots are
// returned the moment the batch is signed; under load the non-blocking
// grabs find none and the batch degrades to sequential signing on its
// own slot.
func (s *Signer) handleSignBatch(tn *signerTenant, w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.met.signBatchSeconds.Observe(time.Since(start).Seconds()) }()
	s.met.requests.WithLabelValues(tn.id, "sign_batch").Inc()
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	var req SignBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErrorCode(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("malformed request: %v", err))
		return
	}
	s.log.Debug("sign-batch request",
		"request_id", RequestIDFromContext(r.Context()), "gid", tn.id, "messages", len(req.Messages))
	if len(req.Messages) == 0 {
		writeErrorCode(w, http.StatusBadRequest, CodeEmptyMessage, "empty batch")
		return
	}
	if len(req.Messages) > s.cfg.MaxBatch {
		writeErrorCode(w, http.StatusBadRequest, CodeBatchTooLarge, fmt.Sprintf("batch of %d messages exceeds limit %d", len(req.Messages), s.cfg.MaxBatch))
		return
	}
	for j, msg := range req.Messages {
		if len(msg) == 0 {
			writeErrorCode(w, http.StatusBadRequest, CodeEmptyMessage, fmt.Sprintf("missing message at index %d", j))
			return
		}
	}
	st, ok := tn.keyed(w)
	if !ok {
		return
	}
	s.met.batchMessages.Observe(float64(len(req.Messages)))
	release, ok := s.acquireWorker(w, r)
	if !ok {
		return
	}
	defer release()

	extra := 0
grab:
	for extra < len(req.Messages)-1 {
		select {
		case s.workers <- struct{}{}:
			extra++
		default:
			break grab
		}
	}

	var (
		partials = make([][]byte, len(req.Messages))
		next     atomic.Int64
		mu       sync.Mutex
		signErr  error
		wg       sync.WaitGroup
	)
	sign := func() {
		for {
			j := int(next.Add(1)) - 1
			if j >= len(req.Messages) || r.Context().Err() != nil {
				return
			}
			ps, err := core.ShareSign(st.group.Params, st.share, req.Messages[j])
			if err != nil {
				mu.Lock()
				if signErr == nil {
					signErr = err
				}
				mu.Unlock()
				continue
			}
			partials[j] = ps.Marshal()
		}
	}
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-s.workers }()
			sign()
		}()
	}
	sign() // the request's own slot signs too
	wg.Wait()

	if r.Context().Err() != nil {
		writeErrorCode(w, http.StatusServiceUnavailable, CodeCanceled, "canceled mid-batch")
		return
	}
	if signErr != nil {
		writeError(w, http.StatusInternalServerError, signErr.Error())
		return
	}
	writeJSON(w, http.StatusOK, PartialBatchResponse{Index: s.index, Partials: partials})
}

// acquireWorker runs admission control: it sheds the request with 503
// when the wait queue is full, otherwise blocks for a worker slot (or
// the client hanging up). On ok it returns the release function the
// caller must defer; on !ok the error response has been written.
func (s *Signer) acquireWorker(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.inflight.Add(1) > int64(s.cfg.MaxWorkers+s.cfg.MaxQueue) {
		s.inflight.Add(-1)
		s.met.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeErrorCode(w, http.StatusServiceUnavailable, CodeOverloaded, "signer overloaded")
		return nil, false
	}
	select {
	case s.workers <- struct{}{}:
		return func() {
			<-s.workers
			s.inflight.Add(-1)
		}, true
	case <-r.Context().Done():
		s.inflight.Add(-1)
		writeErrorCode(w, http.StatusServiceUnavailable, CodeCanceled, "canceled while queued")
		return nil, false
	}
}

func (s *Signer) handlePubkey(tn *signerTenant, w http.ResponseWriter, _ *http.Request) {
	st, ok := tn.keyed(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, PubkeyResponse{
		Domain: st.group.Domain, N: st.group.N, T: st.group.T, PK: st.group.PK.Marshal(),
	})
}

func (s *Signer) handleVK(tn *signerTenant, w http.ResponseWriter, _ *http.Request) {
	st, ok := tn.keyed(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, VKResponse{
		Index: s.index, VK: st.group.VKs[s.index].Marshal(),
	})
}

func (s *Signer) handleHealth(w http.ResponseWriter, _ *http.Request) {
	b := Build()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status: "ok", Index: s.index, Inflight: int(s.inflight.Load()),
		Version: b.Version, GoVersion: b.GoVersion, Revision: b.Revision,
	})
}

// decodeJSON decodes a request body, wrapping decode failures in the
// message the handlers answer 400 with.
func decodeJSON(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("malformed request: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before touching the ResponseWriter: an unencodable value
	// (a bug, not a peer problem) becomes a 500 instead of a silently
	// truncated body under an already-committed success status.
	raw, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(raw, '\n'))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

func writeErrorCode(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}

// methodNotAllowed is the fallback handler registered on every known path
// without a method pattern: requests with the wrong HTTP method get a
// 405 with an Allow header and the service's JSON error schema.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeErrorCode(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allow))
	}
}
