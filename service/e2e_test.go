package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
)

// TestEndToEndHTTPPipeline is the subsystem's acceptance test: a
// coordinator gateway in front of n=7, t=3 HTTP signer nodes produces a
// signature accepted by core.Verify, through the full client -> HTTP
// coordinator -> HTTP signers -> combine pipeline, with up to t=3
// signers down or Byzantine.
func TestEndToEndHTTPPipeline(t *testing.T) {
	f := testFixture(t)
	cases := []struct {
		name string
		down []int
		byz  []int
	}{
		{name: "all healthy"},
		{name: "3 down", down: []int{2, 4, 6}},
		{name: "3 Byzantine", byz: []int{1, 3, 5}},
		{name: "2 down 1 Byzantine", down: []int{5, 7}, byz: []int{1}},
		{name: "1 down 2 Byzantine", down: []int{3}, byz: []int{4, 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			urls := startSigners(t, f, func(i int, h http.Handler) http.Handler {
				if contains(tc.byz, i) {
					return tamperSign(h)
				}
				return h
			})
			for _, i := range tc.down {
				urls[i-1] = downURL(t)
			}
			coord := newTestCoordinator(t, urls, CoordinatorConfig{SignerTimeout: 2 * time.Second})
			gateway := httptest.NewServer(coord)
			defer gateway.Close()

			client := &Client{BaseURL: gateway.URL}
			pk, info, err := client.FetchPubkey(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if info.N != fixN || info.T != fixT {
				t.Fatalf("gateway advertises n=%d t=%d", info.N, info.T)
			}
			if !pk.Equal(f.group.PK) {
				t.Fatal("gateway public key differs from the group's")
			}

			msg := []byte("e2e: " + tc.name)
			sig, resp, err := client.Sign(context.Background(), msg)
			if err != nil {
				t.Fatalf("Sign via gateway: %v", err)
			}
			if !core.Verify(pk, msg, sig) {
				t.Fatal("end-to-end signature rejected by core.Verify")
			}
			if len(resp.Signers) != fixT+1 {
				t.Fatalf("gateway combined %d shares, want %d", len(resp.Signers), fixT+1)
			}
			for _, i := range append(append([]int{}, tc.down...), tc.byz...) {
				if contains(resp.Signers, i) {
					t.Fatalf("faulty signer %d in combination", i)
				}
			}
			// The deterministic scheme yields one signature per message:
			// a second request must hit the cache and return identical
			// bytes.
			sig2, resp2, err := client.Sign(context.Background(), msg)
			if err != nil {
				t.Fatal(err)
			}
			if !resp2.Cached {
				t.Fatal("second identical request was not served from cache")
			}
			if !sig2.Z.Equal(sig.Z) || !sig2.R.Equal(sig.R) {
				t.Fatal("cached signature differs")
			}
		})
	}
}
