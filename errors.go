package tsig

import (
	"repro/internal/core"
)

// Typed sentinel errors. Every error the library returns that corresponds
// to one of these conditions wraps the matching sentinel — across the
// core primitives, the keystore, the networked service, and (via wire
// codes) the HTTP client — so callers dispatch with errors.Is instead of
// string matching:
//
//	sig, err := group.Combine(msg, parts)
//	if errors.Is(err, tsig.ErrInsufficientShares) { ... }
//	if errors.Is(err, tsig.ErrInvalidShare) { /* a signer was Byzantine */ }
//
// The variables alias the canonical values defined next to the code that
// produces them, so errors.Is matches no matter which layer created the
// error.
var (
	// ErrInvalidShare marks a partial signature that fails Share-Verify:
	// the contributing signer is faulty or Byzantine.
	ErrInvalidShare = core.ErrInvalidShare

	// ErrInsufficientShares: fewer than t+1 distinct valid partial
	// signatures were available for combination.
	ErrInsufficientShares = core.ErrInsufficientShares

	// ErrInvalidEncoding: bytes that are not a valid canonical encoding
	// of the type being unmarshalled.
	ErrInvalidEncoding = core.ErrInvalidEncoding

	// ErrIndexOutOfRange: a share or verification-key index outside the
	// group's 1..n range.
	ErrIndexOutOfRange = core.ErrIndexOutOfRange

	// ErrEmptyMessage: a sign request without a message, rejected before
	// any signer is contacted.
	ErrEmptyMessage = core.ErrEmptyMessage

	// ErrQuorumUnreachable: a service fan-out ended with fewer than t+1
	// valid shares (too many signers down, slow, or Byzantine).
	ErrQuorumUnreachable = core.ErrQuorumUnreachable

	// ErrOverloaded: load shedding — the signer's worker pool and wait
	// queue are full. Retry elsewhere or later.
	ErrOverloaded = core.ErrOverloaded

	// ErrBatchTooLarge: a batch request exceeded the configured MaxBatch.
	ErrBatchTooLarge = core.ErrBatchTooLarge

	// ErrNoKeyMaterial: a keyless daemon was asked for an operation that
	// needs key material before the distributed keygen has run.
	ErrNoKeyMaterial = core.ErrNoKeyMaterial

	// ErrProtocolFailed: a distributed protocol session (remote keygen or
	// refresh) could not complete.
	ErrProtocolFailed = core.ErrProtocolFailed
)
