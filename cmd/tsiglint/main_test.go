package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// capture runs tsiglint's run() with stdout redirected and returns the
// exit code and output.
func capture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	code := run(args)
	os.Stdout = old
	w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return code, buf.String()
}

// TestRealTreeExitsZero is the acceptance gate: the linter over its own
// repository reports nothing and exits 0.
func TestRealTreeExitsZero(t *testing.T) {
	code, out := capture(t, "../..")
	if code != 0 || out != "" {
		t.Fatalf("tsiglint on the real tree: exit %d, output:\n%s", code, out)
	}
}

// TestCorpusExitsOne proves findings drive the exit code and the JSON
// report carries them in the shared metricslint shape.
func TestCorpusExitsOne(t *testing.T) {
	// -only scopes the run to the analyzer under test so new analyzers
	// joining the suite don't change what this corpus proves.
	code, out := capture(t, "-json", "-only", "lockhold", "../../internal/analysis/testdata/lockhold")
	if code != 1 {
		t.Fatalf("exit %d on a corpus with known findings, want 1; output:\n%s", code, out)
	}
	var rep struct {
		Tool     string `json:"tool"`
		Count    int    `json:"count"`
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output is not one JSON object: %v\n%s", err, out)
	}
	if rep.Tool != "tsiglint" || rep.Count == 0 || len(rep.Findings) != rep.Count {
		t.Fatalf("bad report header: tool=%q count=%d findings=%d", rep.Tool, rep.Count, len(rep.Findings))
	}
	for _, f := range rep.Findings {
		if f.Analyzer != "lockhold" || f.File == "" || f.Line == 0 {
			t.Fatalf("malformed finding: %+v", f)
		}
	}
}

// TestUsageErrorsExitTwo pins the third exit code.
func TestUsageErrorsExitTwo(t *testing.T) {
	if code, _ := capture(t, "-only", "nosuch", "../.."); code != 2 {
		t.Fatal("unknown analyzer did not exit 2")
	}
	if code, _ := capture(t, t.TempDir()); code != 2 {
		t.Fatal("directory with no module did not exit 2")
	}
	if code, _ := capture(t, "-format", "xml", "../.."); code != 2 {
		t.Fatal("unknown -format did not exit 2")
	}
}

// TestGitHubFormat proves -format github emits workflow-command
// annotations for every finding.
func TestGitHubFormat(t *testing.T) {
	code, out := capture(t, "-format", "github", "-only", "lockhold", "../../internal/analysis/testdata/lockhold")
	if code != 1 {
		t.Fatalf("exit %d on a corpus with known findings, want 1; output:\n%s", code, out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "::error file=") || !strings.Contains(line, ",line=") {
			t.Fatalf("line is not a GitHub annotation: %q", line)
		}
		if !strings.Contains(line, "::[lockhold] ") {
			t.Fatalf("annotation does not carry the analyzer-tagged message: %q", line)
		}
	}
}
