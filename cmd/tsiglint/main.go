// Command tsiglint machine-checks this repository's crypto and service
// invariants with the zero-dependency analysis engine in
// internal/analysis: no secret share ever reaches a formatting or
// logging sink, crypto packages draw entropy from crypto/rand only,
// sentinel errors and wire codes stay in lockstep between service and
// client, every codec is paired and length-checked, no lock is held
// across a blocking wait in the serving layer, metric labels stay
// bounded, and no request-scoped code mints a root context.
//
// Usage:
//
//	tsiglint [-json] [-tests] [-only analyzer,...] [dir|./...]
//
// tsiglint always analyzes the whole module enclosing the given
// directory (the analyzers check cross-package invariants, so partial
// loads would lie); "./..." is accepted as a conventional spelling of
// "the module here". Output follows the internal/lintreport contract
// shared with metricslint — text, -json, or -format github (GitHub
// Actions ::error annotations) — with the same exit codes, so CI
// scripts both tools identically:
//
//	exit 0  no findings
//	exit 1  findings reported
//	exit 2  usage or load/type-check failure
//
// Findings can be waived only by a narrow directive with a mandatory
// reason — //tsiglint:ignore <analyzer> <reason> — and never for the
// secretflow and randsource analyzers outside test files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/lintreport"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tsiglint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as one JSON object (same as -format json)")
	format := fs.String("format", "text", "output format: text, json, or github")
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return lintreport.ExitError
	}
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(os.Stderr, "tsiglint: unknown -format %q (want text, json, or github)\n", *format)
		return lintreport.ExitError
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return lintreport.ExitClean
	}
	dir := "."
	if fs.NArg() > 0 {
		dir = fs.Arg(0)
		if dir == "./..." || dir == "..." {
			dir = "."
		}
		dir = filepath.Clean(dir)
	}
	analyzers, err := analysis.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsiglint:", err)
		return lintreport.ExitError
	}
	mod, err := analysis.Load(dir, analysis.LoadConfig{IncludeTests: *tests})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsiglint:", err)
		return lintreport.ExitError
	}
	diags := analysis.Run(mod, analyzers)
	findings := make([]lintreport.Finding, 0, len(diags))
	for _, d := range diags {
		// Report module-relative paths: stable across checkouts, clickable
		// in CI logs, and what the github format's file= property needs.
		file := d.Pos.Filename
		if rel, err := filepath.Rel(mod.Dir, file); err == nil {
			file = rel
		}
		findings = append(findings, lintreport.Finding{
			File: file, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	rep := lintreport.New("tsiglint", findings)
	if err := rep.Write(os.Stdout, *format); err != nil {
		fmt.Fprintln(os.Stderr, "tsiglint:", err)
		return lintreport.ExitError
	}
	return rep.ExitCode()
}
