// Command tsiglint machine-checks this repository's crypto and service
// invariants with the zero-dependency analysis engine in
// internal/analysis: no secret share ever reaches a formatting or
// logging sink, crypto packages draw entropy from crypto/rand only,
// sentinel errors and wire codes stay in lockstep between service and
// client, every codec is paired and length-checked, no lock is held
// across a blocking wait in the serving layer, metric labels stay
// bounded, and no request-scoped code mints a root context.
//
// Usage:
//
//	tsiglint [-json] [-tests] [-only analyzer,...] [dir|./...]
//
// tsiglint always analyzes the whole module enclosing the given
// directory (the analyzers check cross-package invariants, so partial
// loads would lie); "./..." is accepted as a conventional spelling of
// "the module here". Findings print as file:line:col: [analyzer]
// message, or as one JSON object with -json — the same shape and exit
// codes as metricslint, so CI scripts both tools identically:
//
//	exit 0  no findings
//	exit 1  findings reported
//	exit 2  usage or load/type-check failure
//
// Findings can be waived only by a narrow directive with a mandatory
// reason — //tsiglint:ignore <analyzer> <reason> — and never for the
// secretflow and randsource analyzers outside test files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tsiglint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as one JSON object")
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	dir := "."
	if fs.NArg() > 0 {
		dir = fs.Arg(0)
		if dir == "./..." || dir == "..." {
			dir = "."
		}
		dir = filepath.Clean(dir)
	}
	analyzers, err := analysis.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsiglint:", err)
		return 2
	}
	mod, err := analysis.Load(dir, analysis.LoadConfig{IncludeTests: *tests})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsiglint:", err)
		return 2
	}
	diags := analysis.Run(mod, analyzers)
	// Report module-relative paths: stable across checkouts, clickable in
	// CI logs.
	for i := range diags {
		if rel, err := filepath.Rel(mod.Dir, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}
	if *jsonOut {
		writeJSON(os.Stdout, "tsiglint", diags)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonFinding is the wire shape shared with metricslint: both linters
// emit {"tool", "count", "findings": [{file, line, col, analyzer,
// message}]} so one CI script consumes either.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonReport struct {
	Tool     string        `json:"tool"`
	Count    int           `json:"count"`
	Findings []jsonFinding `json:"findings"`
}

func writeJSON(w *os.File, tool string, diags []analysis.Diagnostic) {
	rep := jsonReport{Tool: tool, Count: len(diags), Findings: make([]jsonFinding, 0, len(diags))}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}
