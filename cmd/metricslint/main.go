// Command metricslint validates Prometheus text exposition with the
// service/metrics strict parser: well-formed HELP/TYPE headers, samples
// matching their declared family, monotone cumulative histogram
// buckets, no duplicate sample identities. It reads stdin (or the given
// files) and exits non-zero on the first violation — CI pipes a live
// /metrics scrape from a loopback fleet through it to keep the
// exposition format honest:
//
//	curl -fsS http://localhost:9090/metrics | metricslint
package main

import (
	"fmt"
	"os"

	"repro/service/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(1)
	}
}

func run(paths []string) error {
	if len(paths) == 0 {
		return metrics.Lint(os.Stdin)
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = metrics.Lint(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}
