// Command metricslint validates Prometheus text exposition with the
// service/metrics strict parser: well-formed HELP/TYPE headers, samples
// matching their declared family, monotone cumulative histogram
// buckets, no duplicate sample identities. It reads stdin (or the given
// files) and reports violations — CI pipes a live /metrics scrape from
// a loopback fleet through it to keep the exposition format honest:
//
//	curl -fsS http://localhost:9090/metrics | metricslint
//
// Output follows the internal/lintreport contract shared with tsiglint
// — text, -json, or -format github — with the same exit codes, so CI
// scripts both linters identically:
//
//	exit 0  no findings
//	exit 1  findings reported
//	exit 2  usage or I/O failure
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"

	"repro/internal/lintreport"
	"repro/service/metrics"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("metricslint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as one JSON object (same as -format json)")
	format := fs.String("format", "text", "output format: text, json, or github")
	if err := fs.Parse(args); err != nil {
		return lintreport.ExitError
	}
	if *jsonOut {
		*format = "json"
	}
	var findings []lintreport.Finding
	lint := func(name string, r io.Reader) {
		if err := metrics.Lint(r); err != nil {
			findings = append(findings, newFinding(name, err))
		}
	}
	if fs.NArg() == 0 {
		lint("<stdin>", os.Stdin)
	} else {
		for _, path := range fs.Args() {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "metricslint:", err)
				return lintreport.ExitError
			}
			lint(path, f)
			f.Close()
		}
	}
	rep := lintreport.New("metricslint", findings)
	if err := rep.Write(os.Stdout, *format); err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		return lintreport.ExitError
	}
	return rep.ExitCode()
}

// lineRE lifts the "line N: " prefix the exposition parser puts on
// every violation into the structured line field.
var lineRE = regexp.MustCompile(`^line (\d+): `)

// newFinding shapes one parser violation. The exposition parser stops
// at the first violation, so a run yields at most one finding per
// input.
func newFinding(name string, err error) lintreport.Finding {
	f := lintreport.Finding{File: name, Analyzer: "exposition", Message: err.Error()}
	if m := lineRE.FindStringSubmatch(f.Message); m != nil {
		f.Line, _ = strconv.Atoi(m[1])
		f.Message = f.Message[len(m[0]):]
	}
	return f
}
