// Command metricslint validates Prometheus text exposition with the
// service/metrics strict parser: well-formed HELP/TYPE headers, samples
// matching their declared family, monotone cumulative histogram
// buckets, no duplicate sample identities. It reads stdin (or the given
// files) and reports violations — CI pipes a live /metrics scrape from
// a loopback fleet through it to keep the exposition format honest:
//
//	curl -fsS http://localhost:9090/metrics | metricslint
//
// Findings print as file:line: message, or as one JSON object with
// -json — the same {"tool", "count", "findings"} shape and exit codes
// as tsiglint, so CI scripts both linters identically:
//
//	exit 0  no findings
//	exit 1  findings reported
//	exit 2  usage or I/O failure
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"

	"repro/service/metrics"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// finding mirrors tsiglint's JSON finding: one violation with its
// source position. The exposition parser stops at the first violation,
// so a run yields at most one finding per input.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type report struct {
	Tool     string    `json:"tool"`
	Count    int       `json:"count"`
	Findings []finding `json:"findings"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("metricslint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as one JSON object")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	findings := []finding{} // non-nil: -json must render [], matching tsiglint
	lint := func(name string, r io.Reader) {
		if err := metrics.Lint(r); err != nil {
			findings = append(findings, newFinding(name, err))
		}
	}
	if fs.NArg() == 0 {
		lint("<stdin>", os.Stdin)
	} else {
		for _, path := range fs.Args() {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "metricslint:", err)
				return 2
			}
			lint(path, f)
			f.Close()
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(report{Tool: "metricslint", Count: len(findings), Findings: findings})
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d: %s\n", f.File, f.Line, f.Message)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// lineRE lifts the "line N: " prefix the exposition parser puts on
// every violation into the structured line field.
var lineRE = regexp.MustCompile(`^line (\d+): `)

func newFinding(name string, err error) finding {
	f := finding{File: name, Analyzer: "exposition", Message: err.Error()}
	if m := lineRE.FindStringSubmatch(f.Message); m != nil {
		f.Line, _ = strconv.Atoi(m[1])
		f.Message = f.Message[len(m[0]):]
	}
	return f
}
