package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func capture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	code := run(args)
	os.Stdout = old
	w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return code, buf.String()
}

func writeExposition(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "metrics.txt")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCleanExpositionExitsZero(t *testing.T) {
	path := writeExposition(t, "# TYPE up gauge\nup 1\n")
	if code, out := capture(t, path); code != 0 || out != "" {
		t.Fatalf("exit %d, output %q on a clean exposition", code, out)
	}
}

func TestViolationExitsOneWithSharedJSONShape(t *testing.T) {
	path := writeExposition(t, "# TYPE up gauge\nup 1\nup 1\n")
	code, out := capture(t, "-json", path)
	if code != 1 {
		t.Fatalf("exit %d on a duplicate sample, want 1", code)
	}
	var rep struct {
		Tool     string `json:"tool"`
		Count    int    `json:"count"`
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output is not one JSON object: %v\n%s", err, out)
	}
	if rep.Tool != "metricslint" || rep.Count != 1 || len(rep.Findings) != 1 {
		t.Fatalf("bad report header: %+v", rep)
	}
	f := rep.Findings[0]
	if f.File != path || f.Line != 3 || f.Analyzer != "exposition" || f.Message == "" {
		t.Fatalf("malformed finding: %+v", f)
	}
}

func TestMissingFileExitsTwo(t *testing.T) {
	if code, _ := capture(t, filepath.Join(t.TempDir(), "nope.txt")); code != 2 {
		t.Fatal("unreadable input did not exit 2")
	}
}
