package main

import (
	"math/big"
	"os"
	"path/filepath"
	"testing"
)

func TestKeygenSignCombineVerifyWorkflow(t *testing.T) {
	dir := t.TempDir()
	if err := cmdKeygen([]string{"-n", "3", "-t", "1", "-domain", "cli-test", "-dir", dir}); err != nil {
		t.Fatalf("keygen: %v", err)
	}
	group := filepath.Join(dir, "group.json")
	msg := "cli end-to-end"
	p1 := filepath.Join(dir, "1.psig")
	p3 := filepath.Join(dir, "3.psig")
	if err := cmdSign([]string{"-group", group, "-share", filepath.Join(dir, "share-1.json"), "-msg", msg, "-out", p1}); err != nil {
		t.Fatalf("sign 1: %v", err)
	}
	if err := cmdSign([]string{"-group", group, "-share", filepath.Join(dir, "share-3.json"), "-msg", msg, "-out", p3}); err != nil {
		t.Fatalf("sign 3: %v", err)
	}
	sig := filepath.Join(dir, "sig.hex")
	if err := cmdCombine([]string{"-group", group, "-msg", msg, "-out", sig, p1, p3}); err != nil {
		t.Fatalf("combine: %v", err)
	}
	if err := cmdVerify([]string{"-group", group, "-msg", msg, "-sig", sig}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Wrong message fails.
	if err := cmdVerify([]string{"-group", group, "-msg", "tampered", "-sig", sig}); err == nil {
		t.Fatal("verify accepted wrong message")
	}
	// Too few shares fail.
	if err := cmdCombine([]string{"-group", group, "-msg", msg, "-out", sig, p1}); err == nil {
		t.Fatal("combine succeeded below threshold")
	}
}

func TestShareFromFileValidation(t *testing.T) {
	good := &shareFile{Index: 1, A1: "ff", B1: "0a", A2: "1", B2: "2"}
	share, err := shareFromFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if share.A1.Cmp(big.NewInt(255)) != 0 {
		t.Fatal("hex parsing wrong")
	}
	bad := &shareFile{Index: 1, A1: "zz", B1: "0a", A2: "1", B2: "2"}
	if _, err := shareFromFile(bad); err == nil {
		t.Fatal("accepted malformed hex")
	}
}

func TestTrimWS(t *testing.T) {
	if trimWS("abc\r\n") != "abc" || trimWS("abc  ") != "abc" || trimWS("") != "" {
		t.Fatal("trimWS misbehaves")
	}
}

func TestLoadGroupRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "group.json")
	if err := os.WriteFile(path, []byte(`{"domain":"x","n":1,"t":0,"pk_g1":"00","pk_g2":"00","vk_v1":["",""],"vk_v2":["",""]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := loadGroup(path); err == nil {
		t.Fatal("accepted malformed group file")
	}
	if _, _, _, _, err := loadGroup(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("accepted missing file")
	}
}
