package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	tsig "repro"
	"repro/service"
)

func TestKeygenSignCombineVerifyWorkflow(t *testing.T) {
	dir := t.TempDir()
	if err := cmdKeygen([]string{"-n", "3", "-t", "1", "-domain", "cli-test", "-dir", dir}); err != nil {
		t.Fatalf("keygen: %v", err)
	}
	group := filepath.Join(dir, "group.json")
	msg := "cli end-to-end"
	p1 := filepath.Join(dir, "1.psig")
	p3 := filepath.Join(dir, "3.psig")
	if err := cmdSign([]string{"-group", group, "-share", filepath.Join(dir, "share-1.json"), "-msg", msg, "-out", p1}); err != nil {
		t.Fatalf("sign 1: %v", err)
	}
	if err := cmdSign([]string{"-group", group, "-share", filepath.Join(dir, "share-3.json"), "-msg", msg, "-out", p3}); err != nil {
		t.Fatalf("sign 3: %v", err)
	}
	sig := filepath.Join(dir, "sig.hex")
	if err := cmdCombine([]string{"-group", group, "-msg", msg, "-out", sig, p1, p3}); err != nil {
		t.Fatalf("combine: %v", err)
	}
	if err := cmdVerify([]string{"-group", group, "-msg", msg, "-sig", sig}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Wrong message fails.
	if err := cmdVerify([]string{"-group", group, "-msg", "tampered", "-sig", sig}); err == nil {
		t.Fatal("verify accepted wrong message")
	}
	// Too few shares fail.
	if err := cmdCombine([]string{"-group", group, "-msg", msg, "-out", sig, p1}); err == nil {
		t.Fatal("combine succeeded below threshold")
	}
}

// TestRemoteSignWorkflow spins up real signer daemons and a coordinator
// on loopback and drives `tsigcli sign -remote`.
func TestRemoteSignWorkflow(t *testing.T) {
	dir := t.TempDir()
	if err := cmdKeygen([]string{"-n", "3", "-t", "1", "-domain", "cli-remote-test", "-dir", dir}); err != nil {
		t.Fatalf("keygen: %v", err)
	}
	group, err := tsig.LoadGroup(filepath.Join(dir, "group.json"))
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, group.N)
	for i := 1; i <= group.N; i++ {
		share, err := tsig.LoadShare(filepath.Join(dir, "share-"+string(rune('0'+i))+".json"))
		if err != nil {
			t.Fatal(err)
		}
		signer, err := service.NewSigner(group, share, service.SignerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(signer)
		defer srv.Close()
		urls[i-1] = srv.URL
	}
	coord, err := service.NewCoordinator(group, urls, service.CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := httptest.NewServer(coord)
	defer coordSrv.Close()

	sigPath := filepath.Join(dir, "remote.sig")
	// Verified against the local group file when -group is given...
	if err := cmdSign([]string{"-remote", coordSrv.URL, "-group", filepath.Join(dir, "group.json"), "-msg", "remote hello", "-out", sigPath}); err != nil {
		t.Fatalf("remote sign: %v", err)
	}
	// ...and against the coordinator's advertised key without one.
	if err := cmdSign([]string{"-remote", coordSrv.URL, "-msg", "remote hello", "-out", sigPath}); err != nil {
		t.Fatalf("remote sign without group: %v", err)
	}
	// An explicitly named but unreadable group file is an error.
	if err := cmdSign([]string{"-remote", coordSrv.URL, "-group", filepath.Join(dir, "nope.json"), "-msg", "x", "-out", sigPath}); err == nil {
		t.Fatal("remote sign accepted a missing explicit group file")
	}
	if err := cmdVerify([]string{"-group", filepath.Join(dir, "group.json"), "-msg", "remote hello", "-sig", sigPath}); err != nil {
		t.Fatalf("verify remote signature: %v", err)
	}
	if _, err := os.Stat(sigPath); err != nil {
		t.Fatal(err)
	}

	// Batch mode: every positional argument signed in one request, one
	// hex signature per output line, each independently verifiable.
	batchPath := filepath.Join(dir, "batch.sigs")
	if err := cmdSign([]string{"-remote", coordSrv.URL, "-group", filepath.Join(dir, "group.json"),
		"-batch", "-out", batchPath, "batch alpha", "batch beta", "batch gamma"}); err != nil {
		t.Fatalf("remote batch sign: %v", err)
	}
	raw, err := os.ReadFile(batchPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("batch output has %d lines, want 3", len(lines))
	}
	for j, msg := range []string{"batch alpha", "batch beta", "batch gamma"} {
		one := filepath.Join(dir, "one.sig")
		if err := os.WriteFile(one, []byte(lines[j]+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := cmdVerify([]string{"-group", filepath.Join(dir, "group.json"), "-msg", msg, "-sig", one}); err != nil {
			t.Fatalf("verify batch signature %d: %v", j, err)
		}
	}
	// -batch without -remote is a usage error.
	if err := cmdSign([]string{"-batch", "local nope"}); err == nil {
		t.Fatal("batch mode accepted without -remote")
	}
}

func TestTrimWS(t *testing.T) {
	if trimWS("abc\r\n") != "abc" || trimWS("abc  ") != "abc" || trimWS("") != "" {
		t.Fatal("trimWS misbehaves")
	}
}

// TestRemoteKeygenRefreshWorkflow drives the fully distributed lifecycle
// through the CLI: keyless daemons generate the key over the wire
// (keygen -remote), the quorum signs, and a refresh epoch re-randomizes
// the shares while the local group file is rewritten in place.
func TestRemoteKeygenRefreshWorkflow(t *testing.T) {
	dir := t.TempDir()
	const n = 5
	urls := make([]string, n)
	for i := 1; i <= n; i++ {
		signer, err := service.NewDaemonSigner(service.DaemonConfig{Index: i})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(signer)
		defer srv.Close()
		urls[i-1] = srv.URL
	}
	coord, err := service.NewKeylessCoordinator(urls, service.CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := httptest.NewServer(coord)
	defer coordSrv.Close()

	// Remote keygen writes the public group file; no share files appear
	// locally (they live on the daemons).
	if err := cmdKeygen([]string{"-remote", coordSrv.URL, "-t", "2", "-domain", "cli-proto-test", "-dir", dir}); err != nil {
		t.Fatalf("remote keygen: %v", err)
	}
	groupPath := filepath.Join(dir, "group.json")
	group, err := tsig.LoadGroup(groupPath)
	if err != nil {
		t.Fatal(err)
	}
	if group.N != n || group.T != 2 || group.Domain != "cli-proto-test" {
		t.Fatalf("group n=%d t=%d domain %q", group.N, group.T, group.Domain)
	}
	if _, err := os.Stat(filepath.Join(dir, "share-1.json")); err == nil {
		t.Fatal("remote keygen leaked a share file locally")
	}

	// The fresh quorum signs, verified against the local group file.
	sigPath := filepath.Join(dir, "proto.sig")
	if err := cmdSign([]string{"-remote", coordSrv.URL, "-group", groupPath, "-msg", "born distributively", "-out", sigPath}); err != nil {
		t.Fatalf("sign after remote keygen: %v", err)
	}
	if err := cmdVerify([]string{"-group", groupPath, "-msg", "born distributively", "-sig", sigPath}); err != nil {
		t.Fatalf("verify: %v", err)
	}

	// Refresh rewrites the group file: same public key, new VKs.
	if err := cmdRefresh([]string{"-remote", coordSrv.URL, "-group", groupPath}); err != nil {
		t.Fatalf("remote refresh: %v", err)
	}
	refreshed, err := tsig.LoadGroup(groupPath)
	if err != nil {
		t.Fatal(err)
	}
	if !refreshed.PK.Equal(group.PK) {
		t.Fatal("refresh changed the public key")
	}
	if refreshed.VKs[1].Equal(group.VKs[1]) {
		t.Fatal("refresh did not re-randomize the verification keys")
	}
	// Old signatures still verify; the quorum still signs.
	if err := cmdVerify([]string{"-group", groupPath, "-msg", "born distributively", "-sig", sigPath}); err != nil {
		t.Fatalf("verify after refresh: %v", err)
	}
	if err := cmdSign([]string{"-remote", coordSrv.URL, "-group", groupPath, "-msg", "raised distributively", "-out", sigPath}); err != nil {
		t.Fatalf("sign after refresh: %v", err)
	}

	// refresh without -remote is a usage error.
	if err := cmdRefresh(nil); err == nil {
		t.Fatal("refresh accepted without -remote")
	}
}

// TestRemoteSignTenantGid covers signing under a named tenant (-gid):
// an implicit ./group.json describes the DEFAULT group and must NOT be
// used to verify a tenant's signature (regression: the tenant's valid
// signature was rejected as INVALID), while an explicitly passed wrong
// -group file must still fail loudly.
func TestRemoteSignTenantGid(t *testing.T) {
	dir := t.TempDir()
	if err := cmdKeygen([]string{"-n", "3", "-t", "1", "-domain", "cli-gid-test", "-dir", dir}); err != nil {
		t.Fatalf("keygen: %v", err)
	}
	group, err := tsig.LoadGroup(filepath.Join(dir, "group.json"))
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, group.N)
	for i := 1; i <= group.N; i++ {
		share, err := tsig.LoadShare(filepath.Join(dir, "share-"+string(rune('0'+i))+".json"))
		if err != nil {
			t.Fatal(err)
		}
		signer, err := service.NewSigner(group, share, service.SignerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(signer)
		defer srv.Close()
		urls[i-1] = srv.URL
	}
	coord, err := service.NewCoordinator(group, urls, service.CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := httptest.NewServer(coord)
	defer coordSrv.Close()

	// Mint the tenant over the wire; its public description goes to a
	// separate directory so ./group.json stays the default group's.
	tenantDir := t.TempDir()
	if err := cmdGroupCreate([]string{"-remote", coordSrv.URL, "-gid", "orders",
		"-t", "1", "-domain", "cli-gid-test/orders", "-dir", tenantDir}); err != nil {
		t.Fatalf("group create: %v", err)
	}

	// From a cwd holding the DEFAULT group.json, a tenant sign must
	// ignore it and verify against the tenant's advertised key.
	t.Chdir(dir)
	sigPath := filepath.Join(tenantDir, "orders.sig")
	if err := cmdSign([]string{"-remote", coordSrv.URL, "-gid", "orders",
		"-msg", "tenant hello", "-out", sigPath}); err != nil {
		t.Fatalf("tenant sign with the default group.json in cwd: %v", err)
	}
	// The signature really is the tenant's, not the default group's.
	if err := cmdVerify([]string{"-group", filepath.Join(tenantDir, "group.json"),
		"-msg", "tenant hello", "-sig", sigPath}); err != nil {
		t.Fatalf("verify under tenant key: %v", err)
	}
	if err := cmdVerify([]string{"-group", filepath.Join(dir, "group.json"),
		"-msg", "tenant hello", "-sig", sigPath}); err == nil {
		t.Fatal("tenant signature verified under the default group's key")
	}
	// An explicitly trusted -group file naming the WRONG group must
	// still reject the coordinator's answer.
	if err := cmdSign([]string{"-remote", coordSrv.URL, "-gid", "orders",
		"-group", filepath.Join(dir, "group.json"), "-msg", "tenant hello", "-out", sigPath}); err == nil {
		t.Fatal("explicit default -group accepted for a tenant signature")
	}
}
