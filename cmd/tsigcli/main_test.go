package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	tsig "repro"
	"repro/service"
)

func TestKeygenSignCombineVerifyWorkflow(t *testing.T) {
	dir := t.TempDir()
	if err := cmdKeygen([]string{"-n", "3", "-t", "1", "-domain", "cli-test", "-dir", dir}); err != nil {
		t.Fatalf("keygen: %v", err)
	}
	group := filepath.Join(dir, "group.json")
	msg := "cli end-to-end"
	p1 := filepath.Join(dir, "1.psig")
	p3 := filepath.Join(dir, "3.psig")
	if err := cmdSign([]string{"-group", group, "-share", filepath.Join(dir, "share-1.json"), "-msg", msg, "-out", p1}); err != nil {
		t.Fatalf("sign 1: %v", err)
	}
	if err := cmdSign([]string{"-group", group, "-share", filepath.Join(dir, "share-3.json"), "-msg", msg, "-out", p3}); err != nil {
		t.Fatalf("sign 3: %v", err)
	}
	sig := filepath.Join(dir, "sig.hex")
	if err := cmdCombine([]string{"-group", group, "-msg", msg, "-out", sig, p1, p3}); err != nil {
		t.Fatalf("combine: %v", err)
	}
	if err := cmdVerify([]string{"-group", group, "-msg", msg, "-sig", sig}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Wrong message fails.
	if err := cmdVerify([]string{"-group", group, "-msg", "tampered", "-sig", sig}); err == nil {
		t.Fatal("verify accepted wrong message")
	}
	// Too few shares fail.
	if err := cmdCombine([]string{"-group", group, "-msg", msg, "-out", sig, p1}); err == nil {
		t.Fatal("combine succeeded below threshold")
	}
}

// TestRemoteSignWorkflow spins up real signer daemons and a coordinator
// on loopback and drives `tsigcli sign -remote`.
func TestRemoteSignWorkflow(t *testing.T) {
	dir := t.TempDir()
	if err := cmdKeygen([]string{"-n", "3", "-t", "1", "-domain", "cli-remote-test", "-dir", dir}); err != nil {
		t.Fatalf("keygen: %v", err)
	}
	group, err := tsig.LoadGroup(filepath.Join(dir, "group.json"))
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, group.N)
	for i := 1; i <= group.N; i++ {
		share, err := tsig.LoadShare(filepath.Join(dir, "share-"+string(rune('0'+i))+".json"))
		if err != nil {
			t.Fatal(err)
		}
		signer, err := service.NewSigner(group, share, service.SignerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(signer)
		defer srv.Close()
		urls[i-1] = srv.URL
	}
	coord, err := service.NewCoordinator(group, urls, service.CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := httptest.NewServer(coord)
	defer coordSrv.Close()

	sigPath := filepath.Join(dir, "remote.sig")
	// Verified against the local group file when -group is given...
	if err := cmdSign([]string{"-remote", coordSrv.URL, "-group", filepath.Join(dir, "group.json"), "-msg", "remote hello", "-out", sigPath}); err != nil {
		t.Fatalf("remote sign: %v", err)
	}
	// ...and against the coordinator's advertised key without one.
	if err := cmdSign([]string{"-remote", coordSrv.URL, "-msg", "remote hello", "-out", sigPath}); err != nil {
		t.Fatalf("remote sign without group: %v", err)
	}
	// An explicitly named but unreadable group file is an error.
	if err := cmdSign([]string{"-remote", coordSrv.URL, "-group", filepath.Join(dir, "nope.json"), "-msg", "x", "-out", sigPath}); err == nil {
		t.Fatal("remote sign accepted a missing explicit group file")
	}
	if err := cmdVerify([]string{"-group", filepath.Join(dir, "group.json"), "-msg", "remote hello", "-sig", sigPath}); err != nil {
		t.Fatalf("verify remote signature: %v", err)
	}
	if _, err := os.Stat(sigPath); err != nil {
		t.Fatal(err)
	}

	// Batch mode: every positional argument signed in one request, one
	// hex signature per output line, each independently verifiable.
	batchPath := filepath.Join(dir, "batch.sigs")
	if err := cmdSign([]string{"-remote", coordSrv.URL, "-group", filepath.Join(dir, "group.json"),
		"-batch", "-out", batchPath, "batch alpha", "batch beta", "batch gamma"}); err != nil {
		t.Fatalf("remote batch sign: %v", err)
	}
	raw, err := os.ReadFile(batchPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("batch output has %d lines, want 3", len(lines))
	}
	for j, msg := range []string{"batch alpha", "batch beta", "batch gamma"} {
		one := filepath.Join(dir, "one.sig")
		if err := os.WriteFile(one, []byte(lines[j]+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := cmdVerify([]string{"-group", filepath.Join(dir, "group.json"), "-msg", msg, "-sig", one}); err != nil {
			t.Fatalf("verify batch signature %d: %v", j, err)
		}
	}
	// -batch without -remote is a usage error.
	if err := cmdSign([]string{"-batch", "local nope"}); err == nil {
		t.Fatal("batch mode accepted without -remote")
	}
}

func TestTrimWS(t *testing.T) {
	if trimWS("abc\r\n") != "abc" || trimWS("abc  ") != "abc" || trimWS("") != "" {
		t.Fatal("trimWS misbehaves")
	}
}
