// Command tsigcli is the client front end for the Section 3 threshold
// signature: it generates a key group (locally, simulating the DKG among
// n local "servers", or remotely, by driving the real distributed keygen
// across a tsigd quorum), produces partial signatures from individual
// share files, combines them, verifies full signatures, requests
// signatures from a running tsigd coordinator, and triggers proactive
// share refresh epochs.
//
//	tsigcli keygen  -n 5 -t 2 -domain my-app -dir keys/
//	tsigcli keygen  -remote http://coordinator:9090 -t 2 -domain my-app -dir keys/
//	tsigcli sign    -group keys/group.json -share keys/share-1.json -msg "hello" -out 1.psig
//	tsigcli sign    -remote http://coordinator:9090 -msg "hello" -out final.sig
//	tsigcli sign    -remote http://coordinator:9090 -batch -out sigs.txt "msg one" "msg two"
//	tsigcli refresh -remote http://coordinator:9090 -group keys/group.json
//	tsigcli combine -group keys/group.json -msg "hello" -out final.sig 1.psig 3.psig 5.psig
//	tsigcli verify  -group keys/group.json -msg "hello" -sig final.sig
//
// A multi-tenant fleet (tsigd with -keystore-dir) hosts many independent
// key groups; the group subcommands manage them and -gid scopes sign and
// refresh to one tenant:
//
//	tsigcli group create -remote http://coordinator:9090 -gid payments -t 2 -domain payments/v1
//	tsigcli group list   -remote http://coordinator:9090
//	tsigcli group rotate -remote http://coordinator:9090 -gid payments -t 2 -domain payments/v1
//	tsigcli group rm     -remote http://coordinator:9090 -gid payments
//	tsigcli sign    -remote http://coordinator:9090 -gid payments -msg "hello"
//	tsigcli refresh -remote http://coordinator:9090 -gid payments
//
// With -remote, keygen runs the actual wire protocol: every share is
// generated on — and never leaves — its own signer daemon, and only the
// public group description comes back (written to -dir/group.json).
// refresh -remote re-randomizes every daemon's share in place without
// changing the public key.
//
// Each share file is the complete private state of one server; in a real
// deployment each lives on a different machine behind a tsigd signer
// daemon (see cmd/tsigd). The command is built entirely on the public
// packages: repro (the scheme) and repro/client (the HTTP client).
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	tsig "repro"
	"repro/client"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "keygen":
		err = cmdKeygen(os.Args[2:])
	case "sign":
		err = cmdSign(os.Args[2:])
	case "refresh":
		err = cmdRefresh(os.Args[2:])
	case "combine":
		err = cmdCombine(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "group":
		err = cmdGroup(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsigcli:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tsigcli {keygen|sign|refresh|combine|verify|group} [flags]")
	os.Exit(2)
}

// cmdGroup manages the tenant groups of a multi-tenant fleet.
func cmdGroup(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: tsigcli group {create|list|rotate|rm} [flags]")
	}
	switch args[0] {
	case "create":
		return cmdGroupCreate(args[1:])
	case "list":
		return cmdGroupList(args[1:])
	case "rotate":
		return cmdGroupRotate(args[1:])
	case "rm":
		return cmdGroupRm(args[1:])
	default:
		return fmt.Errorf("group: unknown subcommand %q (want create, list, rotate, or rm)", args[0])
	}
}

// cmdGroupCreate mints a tenant: it registers the group ID across the
// fleet and drives a distributed keygen for it on the spot. Every
// private share is born on its own signer daemon; only the public group
// description comes back.
func cmdGroupCreate(args []string) error {
	fs := flag.NewFlagSet("group create", flag.ExitOnError)
	remote := fs.String("remote", "", "coordinator base URL (required)")
	gid := fs.String("gid", "", "group ID to create (required)")
	t := fs.Int("t", 2, "threshold (any t+1 sign; requires n >= 2t+1 signers)")
	domain := fs.String("domain", "", "parameter domain label (required)")
	dir := fs.String("dir", "", "optional directory to write the public group.json to")
	timeout := fs.Duration("timeout", 60*time.Second, "keygen timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" || *gid == "" || *domain == "" {
		return fmt.Errorf("group create: -remote, -gid, and -domain are required")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cl := (&client.Client{BaseURL: *remote}).ForGroup(*gid)
	group, resp, err := cl.RunDKG(ctx, *t, *domain)
	if err != nil {
		return err
	}
	fmt.Printf("group create: %q keyed in %d rounds: n=%d t=%d domain %q", *gid, resp.Rounds, group.N, group.T, group.Domain)
	if len(resp.Crashed) > 0 {
		fmt.Printf(" (crashed signers: %v)", resp.Crashed)
	}
	if *dir != "" {
		path := filepath.Join(*dir, "group.json")
		if err := tsig.WriteGroup(path, group); err != nil {
			return err
		}
		fmt.Printf(" -> %s", path)
	}
	fmt.Println()
	return nil
}

func cmdGroupList(args []string) error {
	fs := flag.NewFlagSet("group list", flag.ExitOnError)
	remote := fs.String("remote", "", "coordinator or signer base URL (required)")
	timeout := fs.Duration("timeout", 10*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" {
		return fmt.Errorf("group list: -remote is required")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	groups, err := (&client.Client{BaseURL: *remote}).ListGroups(ctx)
	if err != nil {
		return err
	}
	if len(groups) == 0 {
		fmt.Println("group list: no groups registered")
		return nil
	}
	for _, g := range groups {
		switch {
		case g.Deleted:
			fmt.Printf("%s\tdeleted\n", g.ID)
		case !g.Ready:
			fmt.Printf("%s\tkeyless\n", g.ID)
		default:
			fmt.Printf("%s\tready\tn=%d t=%d epoch=%d domain=%q\n", g.ID, g.N, g.T, g.Epoch, g.Domain)
		}
	}
	return nil
}

// cmdGroupRotate replaces a tenant's key material with a freshly
// generated key under a bumped epoch (a full DKG, not a refresh: the
// public key CHANGES).
func cmdGroupRotate(args []string) error {
	fs := flag.NewFlagSet("group rotate", flag.ExitOnError)
	remote := fs.String("remote", "", "coordinator base URL (required)")
	gid := fs.String("gid", "", "group ID to rotate (default: the default group)")
	t := fs.Int("t", 2, "threshold for the new key")
	domain := fs.String("domain", "", "parameter domain label for the new key (required)")
	timeout := fs.Duration("timeout", 60*time.Second, "rotation timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" || *domain == "" {
		return fmt.Errorf("group rotate: -remote and -domain are required")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cl := (&client.Client{BaseURL: *remote}).ForGroup(*gid)
	group, resp, err := cl.Rotate(ctx, *t, *domain)
	if err != nil {
		return err
	}
	name := *gid
	if name == "" {
		name = "default"
	}
	fmt.Printf("group rotate: %q re-keyed in %d rounds: n=%d t=%d domain %q (the public key CHANGED)\n",
		name, resp.Rounds, group.N, group.T, group.Domain)
	return nil
}

func cmdGroupRm(args []string) error {
	fs := flag.NewFlagSet("group rm", flag.ExitOnError)
	remote := fs.String("remote", "", "coordinator base URL (required)")
	gid := fs.String("gid", "", "group ID to delete (required)")
	timeout := fs.Duration("timeout", 30*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" || *gid == "" {
		return fmt.Errorf("group rm: -remote and -gid are required")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	unreachable, err := (&client.Client{BaseURL: *remote}).DeleteGroup(ctx, *gid)
	if err != nil {
		return err
	}
	fmt.Printf("group rm: %q tombstoned (the ID is retired permanently)", *gid)
	if len(unreachable) > 0 {
		fmt.Printf("; signers %v were unreachable — re-run once they are back", unreachable)
	}
	fmt.Println()
	return nil
}

func cmdKeygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	n := fs.Int("n", 5, "number of servers (local keygen only; remote uses the coordinator's signer count)")
	t := fs.Int("t", 2, "threshold (any t+1 sign; requires n >= 2t+1)")
	domain := fs.String("domain", "tsigcli/v1", "parameter domain label")
	dir := fs.String("dir", ".", "output directory")
	remote := fs.String("remote", "", "coordinator base URL: drive the distributed keygen across its signer daemons instead of generating locally")
	timeout := fs.Duration("timeout", 60*time.Second, "remote keygen timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote != "" {
		return remoteKeygen(*remote, *t, *domain, *dir, *timeout)
	}
	scheme := tsig.NewScheme(tsig.WithDomain(*domain))
	group, members, err := scheme.Keygen(*n, *t)
	if err != nil {
		return err
	}
	if err := tsig.SaveKeystore(*dir, group, members); err != nil {
		return err
	}
	fmt.Printf("keygen: n=%d t=%d; wrote group.json and %d share files to %s\n",
		*n, *t, *n, *dir)
	return nil
}

// remoteKeygen drives the real distributed keygen across the
// coordinator's signer daemons. Every private share is born on its own
// daemon and never crosses the wire; only the public group description
// comes back and is written to dir/group.json.
func remoteKeygen(baseURL string, t int, domain, dir string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	cl := &client.Client{BaseURL: baseURL}
	group, resp, err := cl.RunDKG(ctx, t, domain)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "group.json")
	if err := tsig.WriteGroup(path, group); err != nil {
		return err
	}
	fmt.Printf("keygen: distributed keygen over %d daemons done in %d rounds (qual %v", group.N, resp.Rounds, resp.Qual)
	if len(resp.Crashed) > 0 {
		fmt.Printf(", crashed %v", resp.Crashed)
	}
	fmt.Printf("); n=%d t=%d domain %q -> %s\n", group.N, group.T, group.Domain, path)
	return nil
}

// cmdRefresh triggers one proactive refresh epoch on a running quorum:
// every daemon re-randomizes its share in place, the public key is
// unchanged, and the local group file (when given) is rewritten with the
// new verification keys.
func cmdRefresh(args []string) error {
	fs := flag.NewFlagSet("refresh", flag.ExitOnError)
	remote := fs.String("remote", "", "coordinator base URL (required)")
	groupPath := fs.String("group", "", "local group file to rewrite with the refreshed verification keys")
	gid := fs.String("gid", "", "tenant group ID to refresh (default: the default group)")
	timeout := fs.Duration("timeout", 60*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" {
		return fmt.Errorf("refresh: -remote is required")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cl := (&client.Client{BaseURL: *remote}).ForGroup(*gid)

	// An explicitly named group file pins the refresh invariant — the
	// public key must not change — so it must load; silently skipping
	// the check (and then overwriting the file) would defeat it.
	var oldPK *tsig.PublicKey
	if *groupPath != "" {
		old, err := tsig.LoadGroup(*groupPath)
		if err != nil {
			return err
		}
		oldPK = old.PK
	}
	group, resp, err := cl.RunRefresh(ctx)
	if err != nil {
		return err
	}
	if oldPK != nil && !group.PK.Equal(oldPK) {
		return fmt.Errorf("refresh: coordinator returned a group with a DIFFERENT public key")
	}
	if *groupPath != "" {
		if err := tsig.WriteGroup(*groupPath, group); err != nil {
			return err
		}
	}
	fmt.Printf("refresh: epoch done in %d rounds; public key unchanged, verification keys re-randomized", resp.Rounds)
	if len(resp.Crashed) > 0 {
		fmt.Printf(" (stale signers: %v)", resp.Crashed)
	}
	if *groupPath != "" {
		fmt.Printf(" -> %s", *groupPath)
	}
	fmt.Println()
	return nil
}

func cmdSign(args []string) error {
	fs := flag.NewFlagSet("sign", flag.ExitOnError)
	groupPath := fs.String("group", "group.json", "group file")
	sharePath := fs.String("share", "", "share file (local partial signing)")
	remote := fs.String("remote", "", "coordinator base URL (remote full signing)")
	gid := fs.String("gid", "", "with -remote: tenant group ID to sign under (default: the default group)")
	msg := fs.String("msg", "", "message to sign")
	batch := fs.Bool("batch", false, "with -remote: sign every positional argument in one batch request")
	out := fs.String("out", "", "output file")
	timeout := fs.Duration("timeout", 30*time.Second, "remote request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch && *remote == "" {
		return fmt.Errorf("sign: -batch requires -remote")
	}
	if *gid != "" && *remote == "" {
		return fmt.Errorf("sign: -gid requires -remote")
	}
	if *remote != "" {
		groupSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "group" {
				groupSet = true
			}
		})
		cl := (&client.Client{BaseURL: *remote}).ForGroup(*gid)
		if *batch {
			return remoteSignBatch(cl, *groupPath, groupSet, fs.Args(), *out, *timeout)
		}
		return remoteSign(cl, *groupPath, groupSet, *msg, *out, *timeout)
	}
	if *sharePath == "" || *out == "" {
		return fmt.Errorf("sign: -share and -out are required (or use -remote)")
	}
	// LoadMember bounds-checks the share against the group, so a corrupt
	// keystore fails here with a clear error.
	member, err := tsig.LoadMember(*groupPath, *sharePath)
	if err != nil {
		return err
	}
	ps, err := member.SignShare([]byte(*msg))
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, []byte(hex.EncodeToString(ps.Marshal())+"\n"), 0o600); err != nil {
		return err
	}
	fmt.Printf("sign: server %d/%d produced a %d-byte partial signature -> %s\n",
		member.Index(), member.Group().N, len(ps.Marshal()), *out)
	return nil
}

// remoteSign asks a tsigd coordinator for a full signature and verifies
// it before writing it out. The trusted group comes from the local group
// file when one is available (a coordinator can only vouch for itself);
// only without one does verification fall back to the key the service
// advertises, which still catches transport corruption but not a lying
// coordinator.
func remoteSign(cl *client.Client, groupPath string, groupSet bool, msg, out string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	pk, n, t, err := trustedPubkey(ctx, cl, groupPath, groupSet)
	if err != nil {
		return err
	}
	sig, resp, err := cl.Sign(ctx, []byte(msg))
	if err != nil {
		return err
	}
	if !pk.Verify([]byte(msg), sig) {
		return fmt.Errorf("sign: coordinator returned an INVALID signature")
	}
	if out != "" {
		if err := os.WriteFile(out, []byte(hex.EncodeToString(sig.Marshal())+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("sign: coordinator (n=%d t=%d) returned a verified %d-byte signature from signers %v (cached=%v)",
		n, t, len(sig.Marshal()), resp.Signers, resp.Cached)
	if out != "" {
		fmt.Printf(" -> %s", out)
	}
	fmt.Println()
	return nil
}

// remoteSignBatch signs every message of msgs in ONE request to the
// coordinator's /v1/sign-batch endpoint and verifies each returned
// signature. With -out, one hex signature per line is written, in
// message order.
func remoteSignBatch(cl *client.Client, groupPath string, groupSet bool, msgs []string, out string, timeout time.Duration) error {
	if len(msgs) == 0 {
		return fmt.Errorf("sign: -batch needs at least one message argument")
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	pk, n, t, err := trustedPubkey(ctx, cl, groupPath, groupSet)
	if err != nil {
		return err
	}
	raw := make([][]byte, len(msgs))
	for j, m := range msgs {
		raw[j] = []byte(m)
	}
	sigs, resp, err := cl.SignBatch(ctx, raw)
	if err != nil {
		return err
	}
	var lines []byte
	failed := 0
	for j, sig := range sigs {
		if sig == nil {
			failed++
			fmt.Fprintf(os.Stderr, "sign: message %d failed: %s\n", j, resp.Results[j].Error)
			lines = append(lines, '\n') // keep line j aligned with message j
			continue
		}
		if !pk.Verify(raw[j], sig) {
			return fmt.Errorf("sign: coordinator returned an INVALID signature for message %d", j)
		}
		lines = append(lines, []byte(hex.EncodeToString(sig.Marshal())+"\n")...)
	}
	summary := os.Stdout
	if out != "" {
		if err := os.WriteFile(out, lines, 0o644); err != nil {
			return err
		}
	} else {
		// Without -out, stdout IS the signature stream (one hex line per
		// message); the summary must not corrupt it.
		fmt.Print(string(lines))
		summary = os.Stderr
	}
	fmt.Fprintf(summary, "sign: coordinator (n=%d t=%d) signed %d/%d messages in one batch request\n",
		n, t, len(msgs)-failed, len(msgs))
	if failed > 0 {
		return fmt.Errorf("sign: %d of %d messages failed", failed, len(msgs))
	}
	return nil
}

// trustedPubkey resolves the public key signatures are verified against:
// the local group file when available (a coordinator can only vouch for
// itself), else the key the service advertises — which still catches
// transport corruption but not a lying coordinator. For a named tenant
// (-gid) the implicit group.json is never consulted — it describes the
// DEFAULT group, whose key would wrongly reject the tenant's signatures
// — so only an explicitly passed -group file is trusted there.
func trustedPubkey(ctx context.Context, cl *client.Client, groupPath string, groupSet bool) (*tsig.PublicKey, int, int, error) {
	if groupSet || cl.GroupID == "" {
		if group, err := tsig.LoadGroup(groupPath); err == nil {
			return group.PK, group.N, group.T, nil
		} else if groupSet {
			return nil, 0, 0, err // an explicitly named group file must load
		}
	}
	pk, info, err := cl.FetchPubkey(ctx)
	if err != nil {
		return nil, 0, 0, err
	}
	fmt.Fprintln(os.Stderr, "sign: warning: no local group file; verifying against the coordinator's self-reported public key")
	return pk, info.N, info.T, nil
}

func cmdCombine(args []string) error {
	fs := flag.NewFlagSet("combine", flag.ExitOnError)
	groupPath := fs.String("group", "group.json", "group file")
	msg := fs.String("msg", "", "message that was signed")
	out := fs.String("out", "sig.bin", "output signature file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	group, err := tsig.LoadGroup(*groupPath)
	if err != nil {
		return err
	}
	var parts []*tsig.PartialSignature
	for _, path := range fs.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		dec, err := hex.DecodeString(trimWS(string(raw)))
		if err != nil {
			return fmt.Errorf("combine: %s: %w", path, err)
		}
		ps, err := tsig.UnmarshalPartialSignature(dec)
		if err != nil {
			return fmt.Errorf("combine: %s: %w", path, err)
		}
		parts = append(parts, ps)
	}
	sig, err := group.Combine([]byte(*msg), parts)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, []byte(hex.EncodeToString(sig.Marshal())+"\n"), 0o644); err != nil {
		return err
	}
	fmt.Printf("combine: %d partials -> %d-byte signature -> %s\n", len(parts), len(sig.Marshal()), *out)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	groupPath := fs.String("group", "group.json", "group file")
	msg := fs.String("msg", "", "message")
	sigPath := fs.String("sig", "sig.bin", "signature file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	group, err := tsig.LoadGroup(*groupPath)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(*sigPath)
	if err != nil {
		return err
	}
	dec, err := hex.DecodeString(trimWS(string(raw)))
	if err != nil {
		return err
	}
	sig, err := tsig.UnmarshalSignature(dec)
	if err != nil {
		return err
	}
	if !group.Verify([]byte(*msg), sig) {
		return fmt.Errorf("verify: INVALID signature")
	}
	fmt.Println("verify: OK")
	return nil
}

func trimWS(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r' || s[len(s)-1] == ' ') {
		s = s[:len(s)-1]
	}
	return s
}
