// Command tsigcli is a file-based front end for the Section 3 threshold
// signature: it generates a key group (simulating the DKG among n local
// "servers"), produces partial signatures from individual share files,
// combines them, and verifies full signatures.
//
//	tsigcli keygen  -n 5 -t 2 -domain my-app -dir keys/
//	tsigcli sign    -group keys/group.json -share keys/share-1.json -msg "hello" -out 1.psig
//	tsigcli combine -group keys/group.json -msg "hello" -out final.sig 1.psig 3.psig 5.psig
//	tsigcli verify  -group keys/group.json -msg "hello" -sig final.sig
//
// Each share file is the complete private state of one server; in a real
// deployment each would live on a different machine (the DKG transcript
// itself is an in-process simulation — see internal/transport).
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math/big"
	"os"
	"path/filepath"

	"repro/internal/bn254"
	"repro/internal/core"
)

// groupFile is the public portion of a key group.
type groupFile struct {
	Domain string   `json:"domain"`
	N      int      `json:"n"`
	T      int      `json:"t"`
	PK1    string   `json:"pk_g1"` // hex of g^_1
	PK2    string   `json:"pk_g2"` // hex of g^_2
	VK1    []string `json:"vk_v1"` // hex of V^_1,i (1-based; index 0 empty)
	VK2    []string `json:"vk_v2"`
}

// shareFile is one server's private share.
type shareFile struct {
	Index int    `json:"index"`
	A1    string `json:"a1"`
	B1    string `json:"b1"`
	A2    string `json:"a2"`
	B2    string `json:"b2"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "keygen":
		err = cmdKeygen(os.Args[2:])
	case "sign":
		err = cmdSign(os.Args[2:])
	case "combine":
		err = cmdCombine(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsigcli:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tsigcli {keygen|sign|combine|verify} [flags]")
	os.Exit(2)
}

func cmdKeygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	n := fs.Int("n", 5, "number of servers")
	t := fs.Int("t", 2, "threshold (any t+1 sign; requires n >= 2t+1)")
	domain := fs.String("domain", "tsigcli/v1", "parameter domain label")
	dir := fs.String("dir", ".", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	params := core.NewParams(*domain)
	views, outcome, err := core.DistKeygen(params, *n, *t)
	if err != nil {
		return err
	}
	gf := groupFile{
		Domain: *domain, N: *n, T: *t,
		PK1: hex.EncodeToString(views[1].PK.G1.Marshal()),
		PK2: hex.EncodeToString(views[1].PK.G2.Marshal()),
		VK1: make([]string, *n+1),
		VK2: make([]string, *n+1),
	}
	for i := 1; i <= *n; i++ {
		gf.VK1[i] = hex.EncodeToString(views[1].VKs[i].V1.Marshal())
		gf.VK2[i] = hex.EncodeToString(views[1].VKs[i].V2.Marshal())
	}
	if err := writeJSON(filepath.Join(*dir, "group.json"), gf); err != nil {
		return err
	}
	for i := 1; i <= *n; i++ {
		sf := shareFile{
			Index: i,
			A1:    views[i].Share.A1.Text(16),
			B1:    views[i].Share.B1.Text(16),
			A2:    views[i].Share.A2.Text(16),
			B2:    views[i].Share.B2.Text(16),
		}
		if err := writeJSON(filepath.Join(*dir, fmt.Sprintf("share-%d.json", i)), sf); err != nil {
			return err
		}
	}
	fmt.Printf("keygen: n=%d t=%d, DKG used %d communication round(s); wrote group.json and %d share files to %s\n",
		*n, *t, outcome.Stats.CommunicationRounds(), *n, *dir)
	return nil
}

func cmdSign(args []string) error {
	fs := flag.NewFlagSet("sign", flag.ExitOnError)
	groupPath := fs.String("group", "group.json", "group file")
	sharePath := fs.String("share", "", "share file")
	msg := fs.String("msg", "", "message to sign")
	out := fs.String("out", "", "output partial-signature file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sharePath == "" || *out == "" {
		return fmt.Errorf("sign: -share and -out are required")
	}
	gf, params, _, _, err := loadGroup(*groupPath)
	if err != nil {
		return err
	}
	var sf shareFile
	if err := readJSON(*sharePath, &sf); err != nil {
		return err
	}
	share, err := shareFromFile(&sf)
	if err != nil {
		return err
	}
	ps, err := core.ShareSign(params, share, []byte(*msg))
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, []byte(hex.EncodeToString(ps.Marshal())+"\n"), 0o600); err != nil {
		return err
	}
	fmt.Printf("sign: server %d/%d produced a %d-byte partial signature -> %s\n",
		sf.Index, gf.N, len(ps.Marshal()), *out)
	return nil
}

func cmdCombine(args []string) error {
	fs := flag.NewFlagSet("combine", flag.ExitOnError)
	groupPath := fs.String("group", "group.json", "group file")
	msg := fs.String("msg", "", "message that was signed")
	out := fs.String("out", "sig.bin", "output signature file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, params, pk, vks, err := loadGroup(*groupPath)
	if err != nil {
		return err
	}
	_ = params
	var parts []*core.PartialSignature
	for _, path := range fs.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		dec, err := hex.DecodeString(trimWS(string(raw)))
		if err != nil {
			return fmt.Errorf("combine: %s: %w", path, err)
		}
		ps, err := core.UnmarshalPartialSignature(dec)
		if err != nil {
			return fmt.Errorf("combine: %s: %w", path, err)
		}
		parts = append(parts, ps)
	}
	gf := groupFile{}
	if err := readJSON(*groupPath, &gf); err != nil {
		return err
	}
	sig, err := core.Combine(pk, vks, []byte(*msg), parts, gf.T)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, []byte(hex.EncodeToString(sig.Marshal())+"\n"), 0o644); err != nil {
		return err
	}
	fmt.Printf("combine: %d partials -> %d-byte signature -> %s\n", len(parts), len(sig.Marshal()), *out)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	groupPath := fs.String("group", "group.json", "group file")
	msg := fs.String("msg", "", "message")
	sigPath := fs.String("sig", "sig.bin", "signature file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, _, pk, _, err := loadGroup(*groupPath)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(*sigPath)
	if err != nil {
		return err
	}
	dec, err := hex.DecodeString(trimWS(string(raw)))
	if err != nil {
		return err
	}
	var sig core.Signature
	if err := sig.Unmarshal(dec); err != nil {
		return err
	}
	if !core.Verify(pk, []byte(*msg), &sig) {
		return fmt.Errorf("verify: INVALID signature")
	}
	fmt.Println("verify: OK")
	return nil
}

// ---- helpers ----

func loadGroup(path string) (*groupFile, *core.Params, *core.PublicKey, []*core.VerificationKey, error) {
	var gf groupFile
	if err := readJSON(path, &gf); err != nil {
		return nil, nil, nil, nil, err
	}
	params := core.NewParams(gf.Domain)
	g1, err := decodeG2(gf.PK1)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("group pk_g1: %w", err)
	}
	g2, err := decodeG2(gf.PK2)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("group pk_g2: %w", err)
	}
	pk := &core.PublicKey{Params: params, G1: g1, G2: g2}
	vks := make([]*core.VerificationKey, gf.N+1)
	for i := 1; i <= gf.N; i++ {
		v1, err := decodeG2(gf.VK1[i])
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("vk %d: %w", i, err)
		}
		v2, err := decodeG2(gf.VK2[i])
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("vk %d: %w", i, err)
		}
		vks[i] = &core.VerificationKey{V1: v1, V2: v2}
	}
	return &gf, params, pk, vks, nil
}

func decodeG2(h string) (*bn254.G2, error) {
	raw, err := hex.DecodeString(h)
	if err != nil {
		return nil, err
	}
	p := new(bn254.G2)
	if err := p.Unmarshal(raw); err != nil {
		return nil, err
	}
	return p, nil
}

func shareFromFile(sf *shareFile) (*core.PrivateKeyShare, error) {
	parse := func(s string) (*big.Int, error) {
		v, ok := new(big.Int).SetString(s, 16)
		if !ok {
			return nil, fmt.Errorf("malformed scalar %q", s)
		}
		return v, nil
	}
	a1, err := parse(sf.A1)
	if err != nil {
		return nil, err
	}
	b1, err := parse(sf.B1)
	if err != nil {
		return nil, err
	}
	a2, err := parse(sf.A2)
	if err != nil {
		return nil, err
	}
	b2, err := parse(sf.B2)
	if err != nil {
		return nil, err
	}
	return &core.PrivateKeyShare{Index: sf.Index, A1: a1, B1: b1, A2: a2, B2: b2}, nil
}

func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o600)
}

func readJSON(path string, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, v)
}

func trimWS(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r' || s[len(s)-1] == ' ') {
		s = s[:len(s)-1]
	}
	return s
}
