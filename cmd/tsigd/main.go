// Command tsigd runs the networked threshold-signing service: signer
// daemons that each hold one private key share, and the coordinator
// gateway that fans client requests out to them.
//
// # Fully distributed lifecycle (no trusted dealer anywhere)
//
// Daemons can start with ZERO key material and generate it themselves by
// running the distributed keygen over the wire — each share is born on
// its own daemon and never leaves it:
//
//	tsigd signer      -keystore /var/lib/tsig -index 1 -listen :8071
//	...               (one keyless daemon per server, indices 1..n)
//	tsigd coordinator -group keys/group.json -listen :9090 \
//	    -signers http://host1:8071,...,http://host5:8075
//
//	tsigcli keygen  -remote http://coordinator:9090 -t 2 -domain my-app -dir keys/
//	tsigcli sign    -remote http://coordinator:9090 -msg "hello" -out final.sig
//	tsigcli refresh -remote http://coordinator:9090 -group keys/group.json
//
// The keygen run drives Pedersen's DKG across the signers (one broadcast
// round in the fault-free case), each daemon persists its share via its
// keystore, the coordinator persists the public group file, and the
// quorum immediately serves signatures. The refresh run re-randomizes
// every share in place (Section 3.3) without changing the public key.
//
// # Dealer-based keystores
//
// A pre-generated keystore (tsigcli keygen -n 5 -t 2 -dir keys/) still
// works:
//
//	tsigd signer      -group keys/group.json -share keys/share-1.json -listen :8071
//	...
//	tsigd coordinator -group keys/group.json -listen :9090 \
//	    -signers http://host1:8071,http://host2:8072,...
//
// Clients then obtain full signatures with a single request:
//
//	tsigcli sign -remote http://coordinator:9090 -msg "hello" -out final.sig
//	tsigcli sign -remote http://coordinator:9090 -batch "msg one" "msg two"
//
// The coordinator also serves POST /v1/sign-batch (many messages, one
// request), and -batch-window makes it merge concurrent single-message
// requests into one batched fan-out per signer.
//
// Because partial signing is non-interactive and deterministic, signers
// never talk to one another and keep no per-request state; the service
// tolerates up to t signers being down, slow, or Byzantine. During
// protocol sessions (keygen, refresh) the coordinator relays the round
// messages between signers; protect those links with TLS in production
// (see the ROADMAP open items).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	tsig "repro"
	"repro/service"
	"repro/service/registry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "signer":
		err = cmdSigner(os.Args[2:])
	case "coordinator":
		err = cmdCoordinator(os.Args[2:])
	case "-version", "--version", "version":
		b := service.Build()
		fmt.Printf("tsigd %s %s (%s)\n", b.Version, b.Revision, b.GoVersion)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsigd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tsigd {signer|coordinator|-version} [flags]")
	os.Exit(2)
}

// logFlags holds the observability flags shared by both subcommands.
type logFlags struct {
	format, level string
	debugAddr     string
}

func addLogFlags(fs *flag.FlagSet) *logFlags {
	lf := &logFlags{}
	fs.StringVar(&lf.format, "log-format", "text", "log output format: text or json")
	fs.StringVar(&lf.level, "log-level", "info", "minimum log level: debug, info, warn, error (request-scoped lines log at debug)")
	fs.StringVar(&lf.debugAddr, "debug-addr", "", "separate listen address for /debug/pprof/ and /metrics (empty disables; /metrics is also on the main listener)")
	return lf
}

// logger builds the daemon's slog.Logger from the parsed flags.
func (lf *logFlags) logger() (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(lf.level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", lf.level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch lf.format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", lf.format)
	}
	return slog.New(h), nil
}

// startDebug serves pprof and the daemon's metrics on a separate
// listener, keeping the profiling endpoints off the public service port.
// Best-effort: a debug listener that cannot bind logs and stays down
// rather than failing the daemon.
func (lf *logFlags) startDebug(metrics http.Handler, logger *slog.Logger) {
	if lf.debugAddr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: lf.debugAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("debug listener failed", "addr", lf.debugAddr, "error", err)
		}
	}()
	logger.Info("debug listener serving pprof and metrics", "addr", lf.debugAddr)
}

func cmdSigner(args []string) error {
	fs := flag.NewFlagSet("signer", flag.ExitOnError)
	groupPath := fs.String("group", "group.json", "group file (public key material)")
	sharePath := fs.String("share", "", "this server's private share file")
	keystore := fs.String("keystore", "", "keystore directory: load group.json and share-<index>.json when present, persist keygen/refresh results there (requires -index)")
	index := fs.Int("index", 0, "this daemon's 1-based player index (required with -keystore; otherwise taken from the share)")
	listen := fs.String("listen", ":8071", "listen address")
	workers := fs.Int("workers", 0, "max concurrent signing operations (0 = default)")
	queue := fs.Int("queue", 0, "max requests waiting for a worker (0 = default)")
	maxBatch := fs.Int("max-batch", 0, "max messages per /v1/sign-batch request (0 = default)")
	sessionTTL := fs.Duration("session-ttl", 0, "protocol session GC timeout (0 = default 2m)")
	keystoreDir := fs.String("keystore-dir", "", "multi-tenant keystore directory: persists the group registry and every tenant's key material (without it, non-default tenants live in memory only)")
	lf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := lf.logger()
	if err != nil {
		return fmt.Errorf("signer: %w", err)
	}

	cfg := service.DaemonConfig{
		Signer: service.SignerConfig{
			MaxWorkers: *workers, MaxQueue: *queue, MaxBatch: *maxBatch,
		},
		Index:      *index,
		SessionTTL: *sessionTTL,
		Logger:     logger,
	}
	if *keystoreDir != "" {
		reg, err := registry.Open(registry.Config{Dir: *keystoreDir})
		if err != nil {
			return fmt.Errorf("signer: opening keystore dir: %w", err)
		}
		cfg.Registry = reg
	}
	switch {
	case *keystore != "":
		// Keystore mode: the daemon owns a directory. It loads existing
		// material and persists whatever the distributed protocols
		// produce, so a daemon may start keyless and become a signer the
		// moment the remote keygen completes.
		if *index < 1 {
			return fmt.Errorf("signer: -keystore requires -index")
		}
		gp := filepath.Join(*keystore, "group.json")
		sp := filepath.Join(*keystore, fmt.Sprintf("share-%d.json", *index))
		cfg.Persist = persistShare(gp, sp)
		// Only genuine non-existence means "keyless": any other Stat
		// failure (permissions, I/O) must abort startup — starting
		// keyless would let a later keygen overwrite a share that is
		// merely unreadable right now.
		switch _, err := os.Stat(sp); {
		case err == nil:
			member, err := tsig.LoadMember(gp, sp)
			if err != nil {
				return err
			}
			if member.Index() != *index {
				return fmt.Errorf("signer: %s holds share %d, not %d", sp, member.Index(), *index)
			}
			cfg.Group, cfg.Share = member.Group(), member.PrivateShare()
		case errors.Is(err, os.ErrNotExist):
			logger.Info("no key material yet; waiting for a distributed keygen",
				"component", "signer", "signer", *index, "keystore", *keystore)
		default:
			return fmt.Errorf("signer: checking %s: %w", sp, err)
		}
	case *sharePath != "":
		// Explicit file mode (the historical flags). LoadMember validates
		// the keystore as a whole (group invariants plus share bounds), so
		// a corrupt or mismatched pair fails here. Refresh results are
		// persisted back to the same paths.
		member, err := tsig.LoadMember(*groupPath, *sharePath)
		if err != nil {
			return err
		}
		cfg.Group, cfg.Share = member.Group(), member.PrivateShare()
		cfg.Persist = persistShare(*groupPath, *sharePath)
	case *keystoreDir != "":
		// Registry-only mode: the multi-tenant keystore is the single
		// source of key material. The daemon recovers the default group's
		// share from it when present, else starts keyless.
		if *index < 1 {
			return fmt.Errorf("signer: -keystore-dir requires -index")
		}
	default:
		return fmt.Errorf("signer: -share, -keystore, or -keystore-dir is required")
	}

	signer, err := service.NewDaemonSigner(cfg)
	if err != nil {
		return err
	}
	lf.startDebug(signer.Metrics(), logger)
	if g := signer.Group(); g != nil {
		logger.Info("signer listening",
			"component", "signer", "signer", signer.Index(), "addr", *listen,
			"n", g.N, "t", g.T, "domain", g.Domain)
	} else {
		logger.Info("signer listening (keyless)",
			"component", "signer", "signer", signer.Index(), "addr", *listen)
	}
	return serve(*listen, signer, logger)
}

// persistShare writes new key material through to disk via the keyfile
// package — called by the daemon after a keygen or refresh session, and
// before the material is installed for serving.
func persistShare(groupPath, sharePath string) func(*tsig.Group, *tsig.PrivateKeyShare) error {
	return func(g *tsig.Group, sk *tsig.PrivateKeyShare) error {
		return tsig.WriteMember(groupPath, sharePath, g, sk)
	}
}

func cmdCoordinator(args []string) error {
	fs := flag.NewFlagSet("coordinator", flag.ExitOnError)
	groupPath := fs.String("group", "group.json", "group file; loaded when present, (re)written after a keygen or refresh run")
	signers := fs.String("signers", "", "comma-separated signer base URLs, in share order (1..n)")
	listen := fs.String("listen", ":9090", "listen address")
	timeout := fs.Duration("timeout", 5*time.Second, "per-signer request timeout")
	protoTimeout := fs.Duration("proto-timeout", 0, "per-signer protocol round timeout for keygen/refresh runs (0 = default 10s)")
	cache := fs.Int("cache", 0, "signature LRU cache size (0 = default, negative disables)")
	batchWindow := fs.Duration("batch-window", 0,
		"collect concurrent sign requests for this long and fan them out as one batch (0 disables)")
	maxBatch := fs.Int("max-batch", 0, "max messages per batch (0 = default)")
	keystoreDir := fs.String("keystore-dir", "", "multi-tenant keystore directory: persists the group registry and every tenant's public group (without it, non-default tenants live in memory only)")
	lf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := lf.logger()
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	if *signers == "" {
		return fmt.Errorf("coordinator: -signers is required")
	}
	urls := strings.Split(*signers, ",")
	for i := range urls {
		urls[i] = strings.TrimRight(strings.TrimSpace(urls[i]), "/")
	}
	cfg := service.CoordinatorConfig{
		SignerTimeout: *timeout, CacheSize: *cache,
		BatchWindow: *batchWindow, MaxBatch: *maxBatch,
		ProtoRoundTimeout: *protoTimeout,
		PersistGroup: func(g *tsig.Group) error {
			return tsig.WriteGroup(*groupPath, g)
		},
		Logger: logger,
	}
	if *keystoreDir != "" {
		reg, err := registry.Open(registry.Config{Dir: *keystoreDir})
		if err != nil {
			return fmt.Errorf("coordinator: opening keystore dir: %w", err)
		}
		cfg.Registry = reg
	}

	var coord *service.Coordinator
	group, err := tsig.LoadGroup(*groupPath)
	switch {
	case err == nil:
		if coord, err = service.NewCoordinator(group, urls, cfg); err != nil {
			return err
		}
		logger.Info("coordinator listening",
			"component", "coordinator", "addr", *listen, "backends", len(urls),
			"n", group.N, "t", group.T, "domain", group.Domain)
	case errors.Is(err, os.ErrNotExist):
		// No group yet: start keyless and wait for a remote keygen run
		// (tsigcli keygen -remote) to produce one; it is persisted to
		// -group and served from then on.
		if coord, err = service.NewKeylessCoordinator(urls, cfg); err != nil {
			return err
		}
		logger.Info("coordinator listening (keyless); POST /v1/proto/dkg/run to generate a key",
			"component", "coordinator", "addr", *listen, "backends", len(urls))
	default:
		return err
	}
	lf.startDebug(coord.Metrics(), logger)
	return serve(*listen, coord, logger)
}

// serve runs an HTTP server until SIGINT/SIGTERM, then drains it.
func serve(addr string, handler http.Handler, logger *slog.Logger) error {
	srv := &http.Server{Addr: addr, Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sigc:
		logger.Info("received signal, shutting down", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
