// Command tsigd runs the networked threshold-signing service: signer
// daemons that each hold one private key share, and the coordinator
// gateway that fans client requests out to them.
//
// Generate a keystore first (tsigcli keygen -n 5 -t 2 -dir keys/), then:
//
//	tsigd signer      -group keys/group.json -share keys/share-1.json -listen :8071
//	tsigd signer      -group keys/group.json -share keys/share-2.json -listen :8072
//	...
//	tsigd coordinator -group keys/group.json -listen :9090 \
//	    -signers http://host1:8071,http://host2:8072,...
//
// Clients then obtain full signatures with a single request:
//
//	tsigcli sign -remote http://coordinator:9090 -msg "hello" -out final.sig
//	tsigcli sign -remote http://coordinator:9090 -batch "msg one" "msg two" "msg three"
//
// The coordinator also serves POST /v1/sign-batch (many messages, one
// request), and -batch-window makes it merge concurrent single-message
// requests into one batched fan-out per signer.
//
// Because partial signing is non-interactive and deterministic, signers
// never talk to one another and keep no per-request state; the service
// tolerates up to t signers being down, slow, or Byzantine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	tsig "repro"
	"repro/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "signer":
		err = cmdSigner(os.Args[2:])
	case "coordinator":
		err = cmdCoordinator(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsigd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tsigd {signer|coordinator} [flags]")
	os.Exit(2)
}

func cmdSigner(args []string) error {
	fs := flag.NewFlagSet("signer", flag.ExitOnError)
	groupPath := fs.String("group", "group.json", "group file (public key material)")
	sharePath := fs.String("share", "", "this server's private share file")
	listen := fs.String("listen", ":8071", "listen address")
	workers := fs.Int("workers", 0, "max concurrent signing operations (0 = default)")
	queue := fs.Int("queue", 0, "max requests waiting for a worker (0 = default)")
	maxBatch := fs.Int("max-batch", 0, "max messages per /v1/sign-batch request (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sharePath == "" {
		return fmt.Errorf("signer: -share is required")
	}
	// LoadMember validates the keystore as a whole (group invariants plus
	// share bounds), so a corrupt or mismatched pair fails here.
	member, err := tsig.LoadMember(*groupPath, *sharePath)
	if err != nil {
		return err
	}
	group := member.Group()
	signer, err := service.NewSigner(group, member.PrivateShare(), service.SignerConfig{
		MaxWorkers: *workers, MaxQueue: *queue, MaxBatch: *maxBatch,
	})
	if err != nil {
		return err
	}
	log.Printf("tsigd signer %d/%d (t=%d, domain %q) listening on %s",
		signer.Index(), group.N, group.T, group.Domain, *listen)
	return serve(*listen, signer)
}

func cmdCoordinator(args []string) error {
	fs := flag.NewFlagSet("coordinator", flag.ExitOnError)
	groupPath := fs.String("group", "group.json", "group file (public key material)")
	signers := fs.String("signers", "", "comma-separated signer base URLs, in share order (1..n)")
	listen := fs.String("listen", ":9090", "listen address")
	timeout := fs.Duration("timeout", 5*time.Second, "per-signer request timeout")
	cache := fs.Int("cache", 0, "signature LRU cache size (0 = default, negative disables)")
	batchWindow := fs.Duration("batch-window", 0,
		"collect concurrent sign requests for this long and fan them out as one batch (0 disables)")
	maxBatch := fs.Int("max-batch", 0, "max messages per batch (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *signers == "" {
		return fmt.Errorf("coordinator: -signers is required")
	}
	group, err := tsig.LoadGroup(*groupPath)
	if err != nil {
		return err
	}
	urls := strings.Split(*signers, ",")
	for i := range urls {
		urls[i] = strings.TrimRight(strings.TrimSpace(urls[i]), "/")
	}
	coord, err := service.NewCoordinator(group, urls, service.CoordinatorConfig{
		SignerTimeout: *timeout, CacheSize: *cache,
		BatchWindow: *batchWindow, MaxBatch: *maxBatch,
	})
	if err != nil {
		return err
	}
	log.Printf("tsigd coordinator for n=%d t=%d (domain %q) listening on %s, %d signer backends",
		group.N, group.T, group.Domain, *listen, len(urls))
	return serve(*listen, coord)
}

// serve runs an HTTP server until SIGINT/SIGTERM, then drains it.
func serve(addr string, handler http.Handler) error {
	srv := &http.Server{Addr: addr, Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sigc:
		log.Printf("tsigd: received %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
