// Command tsigd runs the networked threshold-signing service: signer
// daemons that each hold one private key share, and the coordinator
// gateway that fans client requests out to them.
//
// # Fully distributed lifecycle (no trusted dealer anywhere)
//
// Daemons can start with ZERO key material and generate it themselves by
// running the distributed keygen over the wire — each share is born on
// its own daemon and never leaves it:
//
//	tsigd signer      -keystore /var/lib/tsig -index 1 -listen :8071
//	...               (one keyless daemon per server, indices 1..n)
//	tsigd coordinator -group keys/group.json -listen :9090 \
//	    -signers http://host1:8071,...,http://host5:8075
//
//	tsigcli keygen  -remote http://coordinator:9090 -t 2 -domain my-app -dir keys/
//	tsigcli sign    -remote http://coordinator:9090 -msg "hello" -out final.sig
//	tsigcli refresh -remote http://coordinator:9090 -group keys/group.json
//
// The keygen run drives Pedersen's DKG across the signers (one broadcast
// round in the fault-free case), each daemon persists its share via its
// keystore, the coordinator persists the public group file, and the
// quorum immediately serves signatures. The refresh run re-randomizes
// every share in place (Section 3.3) without changing the public key.
//
// # Dealer-based keystores
//
// A pre-generated keystore (tsigcli keygen -n 5 -t 2 -dir keys/) still
// works:
//
//	tsigd signer      -group keys/group.json -share keys/share-1.json -listen :8071
//	...
//	tsigd coordinator -group keys/group.json -listen :9090 \
//	    -signers http://host1:8071,http://host2:8072,...
//
// Clients then obtain full signatures with a single request:
//
//	tsigcli sign -remote http://coordinator:9090 -msg "hello" -out final.sig
//	tsigcli sign -remote http://coordinator:9090 -batch "msg one" "msg two"
//
// The coordinator also serves POST /v1/sign-batch (many messages, one
// request), and -batch-window makes it merge concurrent single-message
// requests into one batched fan-out per signer.
//
// Because partial signing is non-interactive and deterministic, signers
// never talk to one another and keep no per-request state; the service
// tolerates up to t signers being down, slow, or Byzantine. During
// protocol sessions (keygen, refresh) the coordinator relays the round
// messages between signers; protect those links with TLS in production
// (see the ROADMAP open items).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	tsig "repro"
	"repro/service"
	"repro/service/registry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "signer":
		err = cmdSigner(os.Args[2:])
	case "coordinator":
		err = cmdCoordinator(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsigd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tsigd {signer|coordinator} [flags]")
	os.Exit(2)
}

func cmdSigner(args []string) error {
	fs := flag.NewFlagSet("signer", flag.ExitOnError)
	groupPath := fs.String("group", "group.json", "group file (public key material)")
	sharePath := fs.String("share", "", "this server's private share file")
	keystore := fs.String("keystore", "", "keystore directory: load group.json and share-<index>.json when present, persist keygen/refresh results there (requires -index)")
	index := fs.Int("index", 0, "this daemon's 1-based player index (required with -keystore; otherwise taken from the share)")
	listen := fs.String("listen", ":8071", "listen address")
	workers := fs.Int("workers", 0, "max concurrent signing operations (0 = default)")
	queue := fs.Int("queue", 0, "max requests waiting for a worker (0 = default)")
	maxBatch := fs.Int("max-batch", 0, "max messages per /v1/sign-batch request (0 = default)")
	sessionTTL := fs.Duration("session-ttl", 0, "protocol session GC timeout (0 = default 2m)")
	keystoreDir := fs.String("keystore-dir", "", "multi-tenant keystore directory: persists the group registry and every tenant's key material (without it, non-default tenants live in memory only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := service.DaemonConfig{
		Signer: service.SignerConfig{
			MaxWorkers: *workers, MaxQueue: *queue, MaxBatch: *maxBatch,
		},
		Index:      *index,
		SessionTTL: *sessionTTL,
	}
	if *keystoreDir != "" {
		reg, err := registry.Open(registry.Config{Dir: *keystoreDir})
		if err != nil {
			return fmt.Errorf("signer: opening keystore dir: %w", err)
		}
		cfg.Registry = reg
	}
	switch {
	case *keystore != "":
		// Keystore mode: the daemon owns a directory. It loads existing
		// material and persists whatever the distributed protocols
		// produce, so a daemon may start keyless and become a signer the
		// moment the remote keygen completes.
		if *index < 1 {
			return fmt.Errorf("signer: -keystore requires -index")
		}
		gp := filepath.Join(*keystore, "group.json")
		sp := filepath.Join(*keystore, fmt.Sprintf("share-%d.json", *index))
		cfg.Persist = persistShare(gp, sp)
		// Only genuine non-existence means "keyless": any other Stat
		// failure (permissions, I/O) must abort startup — starting
		// keyless would let a later keygen overwrite a share that is
		// merely unreadable right now.
		switch _, err := os.Stat(sp); {
		case err == nil:
			member, err := tsig.LoadMember(gp, sp)
			if err != nil {
				return err
			}
			if member.Index() != *index {
				return fmt.Errorf("signer: %s holds share %d, not %d", sp, member.Index(), *index)
			}
			cfg.Group, cfg.Share = member.Group(), member.PrivateShare()
		case errors.Is(err, os.ErrNotExist):
			log.Printf("tsigd signer %d: no key material in %s yet; waiting for a distributed keygen", *index, *keystore)
		default:
			return fmt.Errorf("signer: checking %s: %w", sp, err)
		}
	case *sharePath != "":
		// Explicit file mode (the historical flags). LoadMember validates
		// the keystore as a whole (group invariants plus share bounds), so
		// a corrupt or mismatched pair fails here. Refresh results are
		// persisted back to the same paths.
		member, err := tsig.LoadMember(*groupPath, *sharePath)
		if err != nil {
			return err
		}
		cfg.Group, cfg.Share = member.Group(), member.PrivateShare()
		cfg.Persist = persistShare(*groupPath, *sharePath)
	case *keystoreDir != "":
		// Registry-only mode: the multi-tenant keystore is the single
		// source of key material. The daemon recovers the default group's
		// share from it when present, else starts keyless.
		if *index < 1 {
			return fmt.Errorf("signer: -keystore-dir requires -index")
		}
	default:
		return fmt.Errorf("signer: -share, -keystore, or -keystore-dir is required")
	}

	signer, err := service.NewDaemonSigner(cfg)
	if err != nil {
		return err
	}
	if g := signer.Group(); g != nil {
		log.Printf("tsigd signer %d/%d (t=%d, domain %q) listening on %s",
			signer.Index(), g.N, g.T, g.Domain, *listen)
	} else {
		log.Printf("tsigd signer %d (keyless) listening on %s", signer.Index(), *listen)
	}
	return serve(*listen, signer)
}

// persistShare writes new key material through to disk via the keyfile
// package — called by the daemon after a keygen or refresh session, and
// before the material is installed for serving.
func persistShare(groupPath, sharePath string) func(*tsig.Group, *tsig.PrivateKeyShare) error {
	return func(g *tsig.Group, sk *tsig.PrivateKeyShare) error {
		return tsig.WriteMember(groupPath, sharePath, g, sk)
	}
}

func cmdCoordinator(args []string) error {
	fs := flag.NewFlagSet("coordinator", flag.ExitOnError)
	groupPath := fs.String("group", "group.json", "group file; loaded when present, (re)written after a keygen or refresh run")
	signers := fs.String("signers", "", "comma-separated signer base URLs, in share order (1..n)")
	listen := fs.String("listen", ":9090", "listen address")
	timeout := fs.Duration("timeout", 5*time.Second, "per-signer request timeout")
	protoTimeout := fs.Duration("proto-timeout", 0, "per-signer protocol round timeout for keygen/refresh runs (0 = default 10s)")
	cache := fs.Int("cache", 0, "signature LRU cache size (0 = default, negative disables)")
	batchWindow := fs.Duration("batch-window", 0,
		"collect concurrent sign requests for this long and fan them out as one batch (0 disables)")
	maxBatch := fs.Int("max-batch", 0, "max messages per batch (0 = default)")
	keystoreDir := fs.String("keystore-dir", "", "multi-tenant keystore directory: persists the group registry and every tenant's public group (without it, non-default tenants live in memory only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *signers == "" {
		return fmt.Errorf("coordinator: -signers is required")
	}
	urls := strings.Split(*signers, ",")
	for i := range urls {
		urls[i] = strings.TrimRight(strings.TrimSpace(urls[i]), "/")
	}
	cfg := service.CoordinatorConfig{
		SignerTimeout: *timeout, CacheSize: *cache,
		BatchWindow: *batchWindow, MaxBatch: *maxBatch,
		ProtoRoundTimeout: *protoTimeout,
		PersistGroup: func(g *tsig.Group) error {
			return tsig.WriteGroup(*groupPath, g)
		},
	}
	if *keystoreDir != "" {
		reg, err := registry.Open(registry.Config{Dir: *keystoreDir})
		if err != nil {
			return fmt.Errorf("coordinator: opening keystore dir: %w", err)
		}
		cfg.Registry = reg
	}

	var coord *service.Coordinator
	group, err := tsig.LoadGroup(*groupPath)
	switch {
	case err == nil:
		if coord, err = service.NewCoordinator(group, urls, cfg); err != nil {
			return err
		}
		log.Printf("tsigd coordinator for n=%d t=%d (domain %q) listening on %s, %d signer backends",
			group.N, group.T, group.Domain, *listen, len(urls))
	case errors.Is(err, os.ErrNotExist):
		// No group yet: start keyless and wait for a remote keygen run
		// (tsigcli keygen -remote) to produce one; it is persisted to
		// -group and served from then on.
		if coord, err = service.NewKeylessCoordinator(urls, cfg); err != nil {
			return err
		}
		log.Printf("tsigd coordinator (keyless, %d signer backends) listening on %s; POST /v1/proto/dkg/run to generate a key",
			len(urls), *listen)
	default:
		return err
	}
	return serve(*listen, coord)
}

// serve runs an HTTP server until SIGINT/SIGTERM, then drains it.
func serve(addr string, handler http.Handler) error {
	srv := &http.Server{Addr: addr, Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sigc:
		log.Printf("tsigd: received %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
