// Service-layer benchmark suite: spins up a loopback signer fleet plus a
// coordinator and measures the end-to-end signing paths a deployment
// actually exercises — DKG over HTTP, single-message fan-out latency,
// the cached and batched paths, parallel client throughput, and a
// proactive refresh round. The committed BENCH_service.json at the repo
// root is produced with:
//
//	benchtables -json-service BENCH_service.json
package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/client"
	"repro/service"
)

// loopbackFleet is a live in-process deployment: n keyless signer
// daemons and one keyless coordinator, each on its own 127.0.0.1
// listener, wired together exactly as tsigd processes would be.
type loopbackFleet struct {
	coordURL string
	servers  []*http.Server
}

func (f *loopbackFleet) close() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for _, srv := range f.servers {
		_ = srv.Shutdown(ctx)
	}
}

// serveLoopback starts handler on an ephemeral loopback port and
// returns its base URL.
func (f *loopbackFleet) serveLoopback(handler http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: handler}
	f.servers = append(f.servers, srv)
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), nil
}

func startLoopbackFleet(n int) (*loopbackFleet, error) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	f := &loopbackFleet{}
	urls := make([]string, n)
	for i := 1; i <= n; i++ {
		sg, err := service.NewDaemonSigner(service.DaemonConfig{Index: i, Logger: quiet})
		if err != nil {
			f.close()
			return nil, err
		}
		if urls[i-1], err = f.serveLoopback(sg); err != nil {
			f.close()
			return nil, err
		}
	}
	coord, err := service.NewKeylessCoordinator(urls, service.CoordinatorConfig{Logger: quiet})
	if err != nil {
		f.close()
		return nil, err
	}
	if f.coordURL, err = f.serveLoopback(coord); err != nil {
		f.close()
		return nil, err
	}
	return f, nil
}

// writeServiceBenchJSON measures the coordinator's end-to-end signing
// flows over a loopback fleet and writes them in the same trajectory
// format as the core suite.
func writeServiceBenchJSON(path string) error {
	const n, t = 3, 1
	fleet, err := startLoopbackFleet(n)
	if err != nil {
		return err
	}
	defer fleet.close()
	cli := &client.Client{BaseURL: fleet.coordURL}
	ctx := context.Background()

	doc := benchDoc{
		Schema: "tsig-bench/v1", Suite: "service", Substrate: "math/big",
		GoVersion: runtime.Version(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		N: n, T: t,
	}
	record := func(name string, d time.Duration, iters int) {
		doc.Results = append(doc.Results, benchResult{
			Name: name, NsPerOp: float64(d.Nanoseconds()) / float64(iters), Iters: iters,
		})
	}

	msgID := 0
	nextMsg := func() []byte {
		msgID++
		return []byte(fmt.Sprintf("service bench message %d", msgID))
	}
	sign := func(msg []byte) error {
		_, _, err := cli.Sign(ctx, msg)
		return err
	}

	// Keying the fleet over the wire is itself a measured flow.
	start := time.Now()
	if _, _, err := cli.RunDKG(ctx, t, "bench/service"); err != nil {
		return fmt.Errorf("loopback DKG: %w", err)
	}
	record(fmt.Sprintf("DKGOverHTTP/n=%d", n), time.Since(start), 1)

	// Cold-path latency: distinct messages, full fan-out + combine each.
	const signIters = 5
	start = time.Now()
	for i := 0; i < signIters; i++ {
		if err := sign(nextMsg()); err != nil {
			return fmt.Errorf("loopback sign: %w", err)
		}
	}
	record("Sign", time.Since(start), signIters)

	// Cached path: a repeated message is answered from the coordinator's
	// signature LRU without touching the signers.
	warm := nextMsg()
	if err := sign(warm); err != nil {
		return fmt.Errorf("loopback sign (warm): %w", err)
	}
	const cachedIters = 20
	start = time.Now()
	for i := 0; i < cachedIters; i++ {
		if err := sign(warm); err != nil {
			return fmt.Errorf("loopback sign (cached): %w", err)
		}
	}
	record("Sign/cached", time.Since(start), cachedIters)

	// Batched path: 8 distinct messages per /v1/sign-batch round trip;
	// the figure is per signature, comparable with Sign above.
	const batchSize = 8
	msgs := make([][]byte, batchSize)
	for i := range msgs {
		msgs[i] = nextMsg()
	}
	start = time.Now()
	if _, _, err := cli.SignBatch(ctx, msgs); err != nil {
		return fmt.Errorf("loopback sign-batch: %w", err)
	}
	record(fmt.Sprintf("SignBatch/msgs=%d", batchSize), time.Since(start), batchSize)

	// Throughput: concurrent clients hammering distinct messages; the
	// figure is wall time per completed signature across the fleet.
	const workers, perWorker = 8, 2
	jobs := make([][]byte, workers*perWorker)
	for i := range jobs {
		jobs[i] = nextMsg()
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	start = time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := sign(jobs[w*perWorker+i]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("loopback parallel sign: %w", err)
		}
	}
	record(fmt.Sprintf("SignParallel/c=%d", workers), time.Since(start), workers*perWorker)

	// Proactive refresh over the wire, ending on a live re-keyed fleet.
	start = time.Now()
	if _, _, err := cli.RunRefresh(ctx); err != nil {
		return fmt.Errorf("loopback refresh: %w", err)
	}
	record(fmt.Sprintf("RefreshOverHTTP/n=%d", n), time.Since(start), 1)
	if err := sign(nextMsg()); err != nil {
		return fmt.Errorf("loopback sign after refresh: %w", err)
	}

	return writeBenchDoc(path, doc)
}
