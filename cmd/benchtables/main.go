// Command benchtables regenerates every quantitative claim of the paper's
// evaluation as a text table (experiment index in DESIGN.md, results log
// in EXPERIMENTS.md):
//
//	benchtables -table sizes     E1/E6: signature & key sizes across schemes
//	benchtables -table ops       E2/E3/E10: per-operation costs across schemes
//	benchtables -table storage   E4: per-player private storage vs n
//	benchtables -table dkg       E5: DKG rounds / messages / bytes vs n
//	benchtables -table rounds    E7: signing-flow interactivity comparison
//	benchtables -table aggregate E9: aggregation compression & verify cost
//	benchtables -table bias      E11: Pedersen-DKG bias attack frequency
//	benchtables -table prims     E12: pairing-substrate microbenchmarks
//	benchtables -table all       everything above
//
// With -json PATH the command instead measures the core benchmark
// families (the BenchmarkShareSign/Verify/Combine/DKG/... set from
// bench_test.go) and writes them as one machine-readable JSON document —
// the committed BENCH_core.json at the repo root is produced this way:
//
//	benchtables -json BENCH_core.json
//
// With -json-service PATH it instead measures the service layer end to
// end — a loopback signer fleet behind a coordinator, keyed by a DKG
// over HTTP — and writes the committed BENCH_service.json the same way:
//
//	benchtables -json-service BENCH_service.json
package main

import (
	"crypto/rand"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/big"
	"os"
	"runtime"
	"time"

	"repro/internal/baselines/adnstorage"
	"repro/internal/baselines/boldyreva"
	"repro/internal/baselines/shouprsa"
	"repro/internal/bn254"
	"repro/internal/core"
	"repro/internal/dkg"
	"repro/internal/dlin"
	"repro/internal/lhsps"
	"repro/internal/stdmodel"
	"repro/internal/transport"
)

var (
	tableFlag = flag.String("table", "all", "which table to print: sizes|ops|storage|dkg|rounds|aggregate|bias|prims|all")
	quickFlag = flag.Bool("quick", false, "smaller sweeps and RSA moduli for a fast run")
	trials    = flag.Int("bias-trials", 20, "trials for the bias-attack experiment")
	jsonFlag  = flag.String("json", "", "measure the core benchmark families and write them as JSON to this path (skips the tables)")
	jsonSvc   = flag.String("json-service", "", "measure the service-layer suite over a loopback fleet and write it as JSON to this path (skips the tables)")
)

func main() {
	flag.Parse()
	if *jsonFlag != "" {
		if err := writeBenchJSON(*jsonFlag); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *jsonSvc != "" {
		if err := writeServiceBenchJSON(*jsonSvc); err != nil {
			log.Fatal(err)
		}
		return
	}
	run := func(name string, fn func()) {
		if *tableFlag == name || *tableFlag == "all" {
			fn()
			fmt.Println()
		}
	}
	run("sizes", tableSizes)
	run("ops", tableOps)
	run("storage", tableStorage)
	run("dkg", tableDKG)
	run("rounds", tableRounds)
	run("aggregate", tableAggregate)
	run("bias", tableBias)
	run("prims", tablePrims)
}

func rsaBits() int {
	if *quickFlag {
		return 1024
	}
	return shouprsa.DefaultModulusBits
}

// timeIt returns the average duration of fn over iters runs.
func timeIt(iters int, fn func()) time.Duration {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(iters)
}

// ---------------------------------------------------------------- E1/E6

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

type sizesRow struct {
	scheme    string
	model     string
	dealer    string
	adaptive  string
	sigBits   int
	shareB    int
	paperBits string
}

func tableSizes() {
	fmt.Println("== E1/E6: signature sizes and share sizes at the 128-bit level ==")
	msg := []byte("size probe")

	rows := []sizesRow{}

	// Section 3 scheme.
	params := core.NewParams("tables/core")
	views := must2(core.DistKeygen(params, 3, 1))
	parts := []*core.PartialSignature{
		must(core.ShareSign(params, views[1].Share, msg)),
		must(core.ShareSign(params, views[2].Share, msg)),
	}
	sig := must(core.Combine(views[1].PK, views[1].VKs, msg, parts, 1))
	rows = append(rows, sizesRow{"this paper S3 (LHSPS+DKG)", "RO", "none (DKG)", "yes",
		len(sig.Marshal()) * 8, views[1].Share.SizeBytes(), "512"})

	// Section 4 standard model.
	smParams := stdmodel.NewParams("tables/sm")
	smViews := must(stdmodel.DistKeygen(smParams, 3, 1))
	smParts := []*stdmodel.PartialSignature{
		must(stdmodel.ShareSign(smParams, smViews[1].Share, msg, rand.Reader)),
		must(stdmodel.ShareSign(smParams, smViews[2].Share, msg, rand.Reader)),
	}
	smSig := must(stdmodel.Combine(smViews[1].PK, smViews[1].VKs, msg, smParts, 1, rand.Reader))
	rows = append(rows, sizesRow{"this paper S4 (GS proofs)", "standard", "none (DKG)", "yes",
		len(smSig.Marshal()) * 8, smViews[1].Share.SizeBytes(), "2048"})

	// Appendix F DLIN.
	dlParams := dlin.NewParams("tables/dlin")
	dlViews := must(dlin.DistKeygen(dlParams, 3, 1))
	dlParts := []*dlin.PartialSignature{
		must(dlin.ShareSign(dlParams, dlViews[1].Share, msg)),
		must(dlin.ShareSign(dlParams, dlViews[2].Share, msg)),
	}
	dlSig := must(dlin.Combine(dlViews[1].PK, dlViews[1].VKs, msg, dlParts, 1))
	rows = append(rows, sizesRow{"this paper App.F (DLIN)", "RO", "none (DKG)", "yes",
		len(dlSig.Marshal()) * 8, dlViews[1].Share.SizeBytes(), "768"})

	// Boldyreva threshold BLS.
	bParams := boldyreva.NewParams("tables/bls")
	bPK, bShares, err := boldyreva.Deal(bParams, 3, 1, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	bVKs := []*bn254.G2{nil, bShares[1].VK, bShares[2].VK, bShares[3].VK}
	bParts := []*boldyreva.PartialSignature{
		boldyreva.ShareSign(bParams, bShares[1], msg),
		boldyreva.ShareSign(bParams, bShares[2], msg),
	}
	bSig := must(boldyreva.Combine(bPK, bVKs, msg, bParts, 1))
	rows = append(rows, sizesRow{"Boldyreva threshold BLS [10]", "RO", "trusted", "no (static)",
		len(bSig.Marshal()) * 8, bShares[1].SizeBytes(), "256"})

	// Shoup threshold RSA.
	rPK, rShares, err := shouprsa.Deal(rsaBits(), 3, 1, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	rParts := []*shouprsa.PartialSignature{
		must(shouprsa.ShareSign(rPK, rShares[1], msg, rand.Reader)),
		must(shouprsa.ShareSign(rPK, rShares[2], msg, rand.Reader)),
	}
	rSig := must(shouprsa.Combine(rPK, msg, rParts))
	rows = append(rows, sizesRow{"Shoup threshold RSA [67]", "RO", "trusted", "no (static)",
		len(rSig.Marshal(rPK)) * 8, rShares[1].SizeBytes(), "3076"})

	fmt.Printf("%-30s %-9s %-12s %-12s %10s %12s %10s\n",
		"scheme", "model", "dealer", "adaptive?", "sig bits", "share bytes", "paper")
	for _, r := range rows {
		fmt.Printf("%-30s %-9s %-12s %-12s %10d %12d %10s\n",
			r.scheme, r.model, r.dealer, r.adaptive, r.sigBits, r.shareB, r.paperBits)
	}
}

func must2[A any, B any](a A, b B, err error) A {
	if err != nil {
		log.Fatal(err)
	}
	return a
}

// ---------------------------------------------------------------- E2/E3/E10

func tableOps() {
	fmt.Println("== E2/E3/E10: per-operation wall time, n=5 t=2 (math/big substrate) ==")
	msg := []byte("ops probe")
	iters := 5

	type row struct {
		scheme                                string
		shareSign, shareVerify, combine, vrfy time.Duration
	}
	var rows []row

	{
		params := core.NewParams("tables/ops-core")
		views := must2(core.DistKeygen(params, 5, 2))
		parts := func() []*core.PartialSignature {
			var ps []*core.PartialSignature
			for _, i := range []int{1, 2, 3} {
				ps = append(ps, must(core.ShareSign(params, views[i].Share, msg)))
			}
			return ps
		}()
		sig := must(core.Combine(views[1].PK, views[1].VKs, msg, parts, 2))
		rows = append(rows, row{
			scheme:      "S3 (this paper, RO)",
			shareSign:   timeIt(iters, func() { _, _ = core.ShareSign(params, views[1].Share, msg) }),
			shareVerify: timeIt(iters, func() { core.ShareVerify(views[1].PK, views[1].VKs[1], msg, parts[0]) }),
			combine:     timeIt(iters, func() { _, _ = core.Combine(views[1].PK, views[1].VKs, msg, parts, 2) }),
			vrfy:        timeIt(iters, func() { core.Verify(views[1].PK, msg, sig) }),
		})
	}
	{
		params := stdmodel.NewParams("tables/ops-sm")
		views := must(stdmodel.DistKeygen(params, 5, 2))
		var parts []*stdmodel.PartialSignature
		for _, i := range []int{1, 2, 3} {
			parts = append(parts, must(stdmodel.ShareSign(params, views[i].Share, msg, rand.Reader)))
		}
		sig := must(stdmodel.Combine(views[1].PK, views[1].VKs, msg, parts, 2, rand.Reader))
		rows = append(rows, row{
			scheme:      "S4 (this paper, std model)",
			shareSign:   timeIt(iters, func() { _, _ = stdmodel.ShareSign(params, views[1].Share, msg, rand.Reader) }),
			shareVerify: timeIt(iters, func() { stdmodel.ShareVerify(views[1].PK, views[1].VKs[1], msg, parts[0]) }),
			combine:     timeIt(iters, func() { _, _ = stdmodel.Combine(views[1].PK, views[1].VKs, msg, parts, 2, rand.Reader) }),
			vrfy:        timeIt(iters, func() { stdmodel.Verify(views[1].PK, msg, sig) }),
		})
	}
	{
		params := dlin.NewParams("tables/ops-dlin")
		views := must(dlin.DistKeygen(params, 5, 2))
		var parts []*dlin.PartialSignature
		for _, i := range []int{1, 2, 3} {
			parts = append(parts, must(dlin.ShareSign(params, views[i].Share, msg)))
		}
		sig := must(dlin.Combine(views[1].PK, views[1].VKs, msg, parts, 2))
		rows = append(rows, row{
			scheme:      "App.F (this paper, DLIN)",
			shareSign:   timeIt(iters, func() { _, _ = dlin.ShareSign(params, views[1].Share, msg) }),
			shareVerify: timeIt(iters, func() { dlin.ShareVerify(views[1].PK, views[1].VKs[1], msg, parts[0]) }),
			combine:     timeIt(iters, func() { _, _ = dlin.Combine(views[1].PK, views[1].VKs, msg, parts, 2) }),
			vrfy:        timeIt(iters, func() { dlin.Verify(views[1].PK, msg, sig) }),
		})
	}
	{
		params := boldyreva.NewParams("tables/ops-bls")
		pk, shares, err := boldyreva.Deal(params, 5, 2, rand.Reader)
		if err != nil {
			log.Fatal(err)
		}
		vks := make([]*bn254.G2, 6)
		for i := 1; i <= 5; i++ {
			vks[i] = shares[i].VK
		}
		var parts []*boldyreva.PartialSignature
		for _, i := range []int{1, 2, 3} {
			parts = append(parts, boldyreva.ShareSign(params, shares[i], msg))
		}
		sig := must(boldyreva.Combine(pk, vks, msg, parts, 2))
		rows = append(rows, row{
			scheme:      "Boldyreva BLS (static)",
			shareSign:   timeIt(iters, func() { boldyreva.ShareSign(params, shares[1], msg) }),
			shareVerify: timeIt(iters, func() { boldyreva.ShareVerify(params, vks[1], msg, parts[0]) }),
			combine:     timeIt(iters, func() { _, _ = boldyreva.Combine(pk, vks, msg, parts, 2) }),
			vrfy:        timeIt(iters, func() { boldyreva.Verify(pk, msg, sig) }),
		})
	}
	{
		pk, shares, err := shouprsa.Deal(rsaBits(), 5, 2, rand.Reader)
		if err != nil {
			log.Fatal(err)
		}
		var parts []*shouprsa.PartialSignature
		for _, i := range []int{1, 2, 3} {
			parts = append(parts, must(shouprsa.ShareSign(pk, shares[i], msg, rand.Reader)))
		}
		sig := must(shouprsa.Combine(pk, msg, parts))
		rows = append(rows, row{
			scheme:      fmt.Sprintf("Shoup RSA-%d (static)", rsaBits()),
			shareSign:   timeIt(iters, func() { _, _ = shouprsa.ShareSign(pk, shares[1], msg, rand.Reader) }),
			shareVerify: timeIt(iters, func() { shouprsa.ShareVerify(pk, msg, parts[0]) }),
			combine:     timeIt(iters, func() { _, _ = shouprsa.Combine(pk, msg, parts) }),
			vrfy:        timeIt(iters, func() { shouprsa.Verify(pk, msg, sig) }),
		})
	}

	fmt.Printf("%-28s %14s %14s %14s %14s\n", "scheme", "Share-Sign", "Share-Verify", "Combine(t+1)", "Verify")
	for _, r := range rows {
		fmt.Printf("%-28s %14v %14v %14v %14v\n", r.scheme,
			r.shareSign.Round(time.Microsecond), r.shareVerify.Round(time.Microsecond),
			r.combine.Round(time.Microsecond), r.vrfy.Round(time.Microsecond))
	}
}

// ---------------------------------------------------------------- E4

func tableStorage() {
	fmt.Println("== E4: per-player private-key storage vs n (bytes) ==")
	fmt.Println("   this paper: 4 scalars, O(1).  ADN'06-style additive+backup: Theta(n).")
	bits := 1024 // ADN dealing with big moduli is prime-generation bound; sizes scale linearly
	ns := []int{5, 9, 17, 33}
	if *quickFlag {
		ns = []int{5, 9}
	}
	fmt.Printf("%6s %18s %22s %28s\n", "n", "S3 share (O(1))", "ADN measured @1024b", "ADN projected @3072b")
	for _, n := range ns {
		t := (n - 1) / 2
		sys, err := adnstorage.Deal(bits, n, t, rand.Reader)
		if err != nil {
			log.Fatal(err)
		}
		measured := sys.Player(1).StorageBytes()
		// Projection: storage is (1 additive share of |N| bits) + n backup
		// shares of |N|+16 bits.
		projected := 3072/8 + n*(3072+16)/8
		fmt.Printf("%6d %18d %22d %28d\n", n, 4*32, measured, projected)
	}
}

// ---------------------------------------------------------------- E5

func tableDKG() {
	fmt.Println("== E5: Dist-Keygen cost vs n (honest run; one communication round) ==")
	ns := []int{3, 5, 9, 13}
	if *quickFlag {
		ns = []int{3, 5}
	}
	fmt.Printf("%6s %4s %8s %12s %12s %14s %12s\n", "n", "t", "rounds", "broadcasts", "unicasts", "bytes", "wall time")
	for _, n := range ns {
		t := (n - 1) / 2
		cfg := dkg.Config{N: n, T: t, NumSharings: core.Dim,
			Scheme: dkg.PedersenScheme{Params: lhsps.NewParams("tables/dkg")}}
		start := time.Now()
		out, err := dkg.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		st := out.Stats
		fmt.Printf("%6d %4d %8d %12d %12d %14d %12v\n",
			n, t, st.CommunicationRounds(), st.BroadcastMessages, st.UnicastMessages,
			st.BroadcastBytes+st.UnicastBytes, el.Round(time.Millisecond))
	}
	// Faulty case: one wrong-share dealer forces the complaint path.
	n, t := 5, 2
	cfg := dkg.Config{N: n, T: t, NumSharings: core.Dim,
		Scheme: dkg.PedersenScheme{Params: lhsps.NewParams("tables/dkg-f")}}
	players := make([]transport.Player, n)
	honest := make([]*dkg.HonestPlayer, n+1)
	for i := 1; i <= n; i++ {
		hp, err := dkg.NewHonestPlayer(cfg, i)
		if err != nil {
			log.Fatal(err)
		}
		honest[i] = hp
		if i == 2 {
			players[i-1] = &dkg.WrongShareDealer{HonestPlayer: hp, Victims: []int{3}}
			continue
		}
		players[i-1] = hp
	}
	out, err := dkg.RunWithPlayers(cfg, players, honest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6d %4d %8d   (with one faulty dealer: complaint + response rounds)\n",
		n, t, out.Stats.CommunicationRounds())
}

// ---------------------------------------------------------------- E7

func tableRounds() {
	fmt.Println("== E7: interactivity of the signing flow ==")
	params := core.NewParams("tables/rounds")
	views := must2(core.DistKeygen(params, 5, 2))
	msg := []byte("round probe")

	res, err := core.DistributedSign(views, 2, []int{1, 3, 5}, nil, msg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %8s %10s %12s %20s\n", "flow", "rounds", "unicasts", "broadcasts", "signer<->signer msgs")
	fmt.Printf("%-34s %8d %10d %12d %20d\n", "S3 signing (3 signers, fault-free)",
		res.Stats.CommunicationRounds(), res.Stats.UnicastMessages, res.Stats.BroadcastMessages, 0)

	res2, err := core.DistributedSign(views, 2, []int{1, 2, 3, 4, 5}, map[int]bool{2: true, 5: true}, msg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %8d %10d %12d %20d\n", "S3 signing (5 signers, 2 faulty)",
		res2.Stats.CommunicationRounds(), res2.Stats.UnicastMessages, res2.Stats.BroadcastMessages, 0)

	// ADN-style additive sharing: fault-free 1 round, any failure forces a
	// reconstruction round among the signers.
	sys, err := adnstorage.Deal(1024, 5, 2, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	h := big.NewInt(1234567)
	_, rounds, err := sys.Sign(h, []int{1, 2, 3, 4, 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %8d %10s %12s %20s\n", "ADN additive RSA (fault-free)", rounds, "n", "0", "0")
	_, rounds, err = sys.Sign(h, []int{1, 2, 3, 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %8d %10s %12s %20s\n", "ADN additive RSA (1 signer down)", rounds, "n", "0", "t+1 (backup shares)")
}

// ---------------------------------------------------------------- E9

func tableAggregate() {
	fmt.Println("== E9: aggregation (Appendix G): size and verify cost vs chain length ==")
	params := core.NewAggParams("tables/agg")
	views, _, err := core.AggDistKeygen(params, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	sign := func(msg []byte) *core.Signature {
		var parts []*core.PartialSignature
		for i := 1; i <= 2; i++ {
			parts = append(parts, must(core.AggShareSign(views[1].PK, views[i].Share, msg)))
		}
		return must(core.AggCombine(views[1].PK, views[1].VKs, msg, parts, 1))
	}
	lengths := []int{1, 2, 4, 8}
	if *quickFlag {
		lengths = []int{1, 2, 4}
	}
	fmt.Printf("%8s %16s %16s %16s\n", "chain", "naive bytes", "aggregate bytes", "agg-verify")
	for _, l := range lengths {
		entries := make([]core.AggEntry, l)
		for i := range entries {
			msg := []byte(fmt.Sprintf("certificate %d", i))
			entries[i] = core.AggEntry{PK: views[1].PK, Msg: msg, Sig: sign(msg)}
		}
		agg := must(core.Aggregate(entries))
		d := timeIt(2, func() {
			if !core.AggregateVerify(entries, agg) {
				log.Fatal("aggregate verify failed")
			}
		})
		fmt.Printf("%8d %16d %16d %16v\n", l, l*64, len(agg.Marshal()), d.Round(time.Millisecond))
	}
}

// ---------------------------------------------------------------- E11

func tableBias() {
	fmt.Printf("== E11: Pedersen-DKG bias attack (Gennaro et al. [41]), %d trials ==\n", *trials)
	predicate := func(pk *bn254.G2) bool {
		return pk.Marshal()[bn254.G2SizeUncompressed-1]&1 == 0
	}
	params := lhsps.NewParams("tables/bias")
	cfg := dkg.Config{N: 5, T: 2, NumSharings: 1, Scheme: dkg.PedersenScheme{Params: params}}

	count := func(attack bool) int {
		hit := 0
		for trial := 0; trial < *trials; trial++ {
			players := make([]transport.Player, cfg.N)
			honest := make([]*dkg.HonestPlayer, cfg.N+1)
			rule := dkg.ExclusionRule(func(deals map[int][][][]*bn254.G2) bool {
				if !attack {
					return false
				}
				with := new(bn254.G2)
				without := new(bn254.G2)
				for j, comms := range deals {
					with.Add(with, comms[0][0][0])
					if j != 2 {
						without.Add(without, comms[0][0][0])
					}
				}
				return !predicate(with) && predicate(without)
			})
			for i := 1; i <= cfg.N; i++ {
				hp, err := dkg.NewHonestPlayer(cfg, i)
				if err != nil {
					log.Fatal(err)
				}
				switch {
				case attack && i == 2:
					players[i-1] = &dkg.BiasAttacker{HonestPlayer: hp, Rule: rule}
				case attack && i == 4:
					players[i-1] = &dkg.BiasHelper{HonestPlayer: hp, AttackerID: 2, Rule: rule}
					honest[i] = hp
				default:
					players[i-1] = hp
					honest[i] = hp
				}
			}
			out, err := dkg.RunWithPlayers(cfg, players, honest)
			if err != nil {
				log.Fatal(err)
			}
			if predicate(out.Results[1].PK[0][0]) {
				hit++
			}
		}
		return hit
	}

	honestHits := count(false)
	attackHits := count(true)
	fmt.Printf("%-26s %12s %12s\n", "run", "Pr[lsb=0]", "expected")
	fmt.Printf("%-26s %9d/%-3d %12s\n", "honest players", honestHits, *trials, "~1/2")
	fmt.Printf("%-26s %9d/%-3d %12s\n", "2-player bias attack", attackHits, *trials, "~3/4")
	fmt.Println("   (the key is biased, yet Theorem 1 proves the SCHEME stays secure —")
	fmt.Println("    the paper's point: Pedersen DKG is safe here without uniformity)")
}

// ---------------------------------------------------------------- E12

func tablePrims() {
	fmt.Println("== E12: pairing-substrate microbenchmarks (math/big implementation) ==")
	p := bn254.G1Generator()
	q := bn254.G2Generator()
	k := must(bn254.RandScalar(rand.Reader))
	e := bn254.Pair(p, q)
	rows := []struct {
		name string
		d    time.Duration
	}{
		{"pairing e(P,Q)", timeIt(5, func() { bn254.Pair(p, q) })},
		{"4-way multi-pairing (Verify)", timeIt(5, func() {
			_, _ = bn254.MultiPair([]*bn254.G1{p, p, p, p}, []*bn254.G2{q, q, q, q})
		})},
		{"hash-to-G1", timeIt(20, func() { bn254.HashToG1("tables/prims", []byte("m")) })},
		{"G1 scalar mult", timeIt(20, func() { new(bn254.G1).ScalarMult(p, k) })},
		{"G2 scalar mult", timeIt(10, func() { new(bn254.G2).ScalarMult(q, k) })},
		{"2-base G1 multi-exp (Share-Sign core)", timeIt(10, func() {
			_, _ = bn254.MultiScalarMultG1([]*bn254.G1{p, p}, []*big.Int{k, k})
		})},
		{"GT exponentiation", timeIt(5, func() { new(bn254.GT).Exp(e, k) })},
	}
	for _, r := range rows {
		fmt.Printf("%-40s %12v\n", r.name, r.d.Round(10*time.Microsecond))
	}
	fmt.Fprintln(os.Stderr)
}

// ---------------------------------------------------------------- -json

// benchResult is one measured family in the BENCH_core.json document.
type benchResult struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Iters   int     `json:"iters"`
}

// benchDoc is the machine-readable benchmark trajectory format: one
// document per suite, committed at the repo root so successive runs can
// be diffed.
type benchDoc struct {
	Schema    string        `json:"schema"`
	Suite     string        `json:"suite"`
	Substrate string        `json:"substrate"`
	GoVersion string        `json:"go_version"`
	GoOS      string        `json:"go_os"`
	GoArch    string        `json:"go_arch"`
	N         int           `json:"n"`
	T         int           `json:"t"`
	Results   []benchResult `json:"results"`
}

// writeBenchJSON measures the core benchmark families — the same
// operations bench_test.go's BenchmarkShareSign/ShareVerify/Combine/
// Verify/DKG/ProactiveRefresh and the substrate microbenchmarks time —
// and writes them as one JSON document. The historical result names stay
// pinned to (n=5, t=2) so successive documents diff cleanly; scaling
// sweeps over (n, t) and batch sizes carry their shape in the name.
// -quick shrinks every family to one iteration and drops the larger
// sweeps, for CI smoke runs.
func writeBenchJSON(path string) error {
	const n, t = 5, 2
	iters := func(full int) int {
		if *quickFlag {
			return 1
		}
		return full
	}
	msg := []byte("bench probe")
	params := core.NewParams("bench/json")
	views, _, err := core.DistKeygen(params, n, t)
	if err != nil {
		return err
	}
	var parts []*core.PartialSignature
	for _, i := range []int{1, 3, 5} {
		ps, err := core.ShareSign(params, views[i].Share, msg)
		if err != nil {
			return err
		}
		parts = append(parts, ps)
	}
	sig, err := core.Combine(views[1].PK, views[1].VKs, msg, parts, t)
	if err != nil {
		return err
	}

	doc := benchDoc{
		Schema: "tsig-bench/v1", Suite: "core", Substrate: "math/big",
		GoVersion: runtime.Version(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		N: n, T: t,
	}
	measure := func(name string, it int, fn func()) {
		it = iters(it)
		doc.Results = append(doc.Results, benchResult{
			Name: name, NsPerOp: float64(timeIt(it, fn).Nanoseconds()), Iters: it,
		})
	}
	measure("ShareSign", 10, func() { _, _ = core.ShareSign(params, views[1].Share, msg) })
	measure("ShareVerify", 5, func() { core.ShareVerify(views[1].PK, views[1].VKs[1], msg, parts[0]) })
	measure("Combine", 10, func() { _, _ = core.Combine(views[1].PK, views[1].VKs, msg, parts, t) })
	measure("Verify", 5, func() { core.Verify(views[1].PK, msg, sig) })
	measure("DKG/n=5", 2, func() {
		cfg := dkg.Config{N: n, T: t, NumSharings: core.Dim,
			Scheme: dkg.PedersenScheme{Params: lhsps.NewParams("bench/json-dkg")}}
		if _, err := dkg.Run(cfg); err != nil {
			log.Fatal(err)
		}
	})
	measure("ProactiveRefresh/n=5", 2, func() {
		out, err := core.RunRefresh(params, n, t)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := core.ApplyRefresh(views[1], out.Results[1]); err != nil {
			log.Fatal(err)
		}
	})
	p, q := bn254.G1Generator(), bn254.G2Generator()
	k := must(bn254.RandScalar(rand.Reader))
	measure("Pairing", 5, func() { bn254.Pair(p, q) })
	measure("MultiPair4", 5, func() {
		_, _ = bn254.MultiPair([]*bn254.G1{p, p, p, p}, []*bn254.G2{q, q, q, q})
	})
	measure("HashToG1", 20, func() { bn254.HashToG1("bench/json", []byte("m")) })
	measure("G1ScalarMult", 20, func() { new(bn254.G1).ScalarMult(p, k) })
	measure("G2ScalarMult", 10, func() { new(bn254.G2).ScalarMult(q, k) })

	// Scaling sweep: the hot-path families at growing committee shapes.
	// (5,2) is already covered by the unsuffixed names above.
	sweeps := [][2]int{{9, 4}, {16, 5}}
	if *quickFlag {
		sweeps = nil
	}
	for _, nt := range sweeps {
		sn, st := nt[0], nt[1]
		sviews, _, err := core.DistKeygen(params, sn, st)
		if err != nil {
			return err
		}
		var sparts []*core.PartialSignature
		for i := 1; i <= st+1; i++ {
			ps, err := core.ShareSign(params, sviews[i].Share, msg)
			if err != nil {
				return err
			}
			sparts = append(sparts, ps)
		}
		ssig, err := core.Combine(sviews[1].PK, sviews[1].VKs, msg, sparts, st)
		if err != nil {
			return err
		}
		suffix := fmt.Sprintf("/n=%d,t=%d", sn, st)
		measure("ShareSign"+suffix, 5, func() { _, _ = core.ShareSign(params, sviews[1].Share, msg) })
		measure("ShareVerify"+suffix, 5, func() { core.ShareVerify(sviews[1].PK, sviews[1].VKs[1], msg, sparts[0]) })
		measure("Combine"+suffix, 5, func() { _, _ = core.Combine(sviews[1].PK, sviews[1].VKs, msg, sparts, st) })
		measure("Verify"+suffix, 5, func() { core.Verify(sviews[1].PK, msg, ssig) })
	}

	// Batch sweep: k full signatures through BatchVerify and k partials
	// from one signer through BatchShareVerify (the coordinator hot path).
	ks := []int{1, 8, 32}
	if *quickFlag {
		ks = []int{1, 8}
	}
	for _, bk := range ks {
		entries := make([]core.BatchEntry, bk)
		shareEntries := make([]core.ShareBatchEntry, bk)
		for j := 0; j < bk; j++ {
			bmsg := []byte(fmt.Sprintf("batch probe %d", j))
			var bparts []*core.PartialSignature
			for _, i := range []int{1, 3, 5} {
				ps, err := core.ShareSign(params, views[i].Share, bmsg)
				if err != nil {
					return err
				}
				bparts = append(bparts, ps)
			}
			bsig, err := core.Combine(views[1].PK, views[1].VKs, bmsg, bparts, t)
			if err != nil {
				return err
			}
			entries[j] = core.BatchEntry{Msg: bmsg, Sig: bsig}
			shareEntries[j] = core.ShareBatchEntry{Msg: bmsg, VK: views[1].VKs[1], PS: bparts[0]}
		}
		measure(fmt.Sprintf("BatchVerify/k=%d", bk), 5, func() {
			if ok, err := core.BatchVerify(views[1].PK, entries, nil); err != nil || !ok {
				log.Fatalf("BatchVerify(k=%d) = %v, %v", bk, ok, err)
			}
		})
		measure(fmt.Sprintf("BatchShareVerify/k=%d", bk), 5, func() {
			if ok, err := core.BatchShareVerify(views[1].PK, shareEntries, nil); err != nil || !ok {
				log.Fatalf("BatchShareVerify(k=%d) = %v, %v", bk, ok, err)
			}
		})
	}

	return writeBenchDoc(path, doc)
}

// writeBenchDoc marshals one suite document to its committed path.
func writeBenchDoc(path string, doc benchDoc) error {
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchtables: wrote %d results -> %s\n", len(doc.Results), path)
	return nil
}
