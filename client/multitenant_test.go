package client

import (
	"context"
	"errors"
	"testing"

	tsig "repro"
	"repro/service"
)

// TestE2E_ClientMultiTenant drives the tenant lifecycle through the
// public client: mint a named group on a keyless fleet with ForGroup +
// RunDKG, sign under it, watch readiness flip, rotate its key, and
// finally tombstone it — with typed errors for unknown and deleted IDs.
func TestE2E_ClientMultiTenant(t *testing.T) {
	baseURL := startKeylessService(t, 3)
	c := &Client{BaseURL: baseURL}
	ctx := context.Background()

	// Nothing is keyed yet: the fleet is alive but not ready.
	if hr, err := c.Health(ctx); err != nil || hr.Status != "ok" {
		t.Fatalf("health = %+v, %v", hr, err)
	}
	if rr, err := c.Ready(ctx); err != nil || rr.Status != "unready" {
		t.Fatalf("pre-keygen ready = %+v, %v", rr, err)
	}
	// An unknown tenant is a typed error across the wire.
	if _, _, err := c.ForGroup("alpha").Sign(ctx, []byte("x")); !errors.Is(err, service.ErrUnknownGroup) {
		t.Fatalf("unknown tenant sign err = %v, want ErrUnknownGroup", err)
	}

	// Mint the tenant: ForGroup scopes the DKG to a fresh ID, which the
	// fleet registers and keys on the spot.
	alpha := c.ForGroup("alpha")
	group, _, err := alpha.RunDKG(ctx, 1, "client-mt/alpha")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("scoped signing")
	sig, _, err := alpha.Sign(ctx, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !group.Verify(msg, sig) {
		t.Fatal("signature does not verify under the tenant's key")
	}
	// The tenant's advertised pubkey matches the DKG outcome.
	pk, _, err := alpha.FetchPubkey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pk.Verify(msg, sig) {
		t.Fatal("advertised tenant pubkey does not match")
	}
	// The DEFAULT group is still keyless — tenancy is isolation.
	if _, _, err := c.Sign(ctx, msg); !errors.Is(err, tsig.ErrNoKeyMaterial) {
		t.Fatalf("default sign err = %v, want ErrNoKeyMaterial", err)
	}

	// Readiness now reports the keyed tenant.
	rr, err := c.Ready(ctx)
	if err != nil || rr.Status != "ready" {
		t.Fatalf("post-keygen ready = %+v, %v", rr, err)
	}
	groups, err := c.ListGroups(ctx)
	if err != nil {
		t.Fatal(err)
	}
	foundAlpha := false
	for _, g := range groups {
		if g.ID == "alpha" {
			foundAlpha = true
			if !g.Ready || g.Epoch != 1 || g.Domain != "client-mt/alpha" {
				t.Fatalf("alpha listing = %+v", g)
			}
		}
	}
	if !foundAlpha {
		t.Fatalf("alpha missing from ListGroups: %+v", groups)
	}

	// Rotation replaces the key (epoch bump + fresh DKG).
	rotated, _, err := alpha.Rotate(ctx, 1, "client-mt/alpha")
	if err != nil {
		t.Fatal(err)
	}
	if rotated.PK.Equal(group.PK) {
		t.Fatal("rotation kept the old public key")
	}
	sig2, _, err := alpha.Sign(ctx, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !rotated.Verify(msg, sig2) || group.Verify(msg, sig2) {
		t.Fatal("post-rotation signature not under the new key")
	}

	// Deletion tombstones the ID permanently.
	unreachable, err := c.DeleteGroup(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(unreachable) != 0 {
		t.Fatalf("deletion missed signers %v", unreachable)
	}
	if _, _, err := alpha.Sign(ctx, msg); !errors.Is(err, service.ErrGroupDeleted) {
		t.Fatalf("post-delete sign err = %v, want ErrGroupDeleted", err)
	}
	if _, _, err := alpha.RunDKG(ctx, 1, "client-mt/alpha"); !errors.Is(err, service.ErrGroupDeleted) {
		t.Fatalf("re-mint err = %v, want ErrGroupDeleted", err)
	}
}
