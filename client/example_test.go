package client_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	tsig "repro"
	"repro/client"
	"repro/service"
)

// startGroup brings a whole signing service up on loopback: n signer
// daemons plus the coordinator gateway. Real deployments run each piece
// with cmd/tsigd; the topology and the client code are identical.
func startGroup(n, t int) (*tsig.Group, string, func()) {
	scheme := tsig.NewScheme(tsig.WithDomain("client-example/v1"))
	group, members, err := scheme.Keygen(n, t)
	if err != nil {
		log.Fatal(err)
	}
	var closers []func()
	urls := make([]string, n)
	for i, m := range members {
		signer, err := service.NewSigner(group, m.PrivateShare(), service.SignerConfig{})
		if err != nil {
			log.Fatal(err)
		}
		srv := httptest.NewServer(signer)
		closers = append(closers, srv.Close)
		urls[i] = srv.URL
	}
	coord, err := service.NewCoordinator(group, urls, service.CoordinatorConfig{})
	if err != nil {
		log.Fatal(err)
	}
	gw := httptest.NewServer(coord)
	closers = append(closers, gw.Close)
	stop := func() {
		for _, c := range closers {
			c()
		}
	}
	return group, gw.URL, stop
}

// Remote signing: one request to the coordinator yields a full threshold
// signature, verified against the locally trusted group.
func ExampleClient_Sign() {
	group, gatewayURL, stop := startGroup(5, 2)
	defer stop()

	c := &client.Client{BaseURL: gatewayURL} // Transport defaults to http.DefaultClient
	msg := []byte("remote signing example")
	sig, receipt, err := c.Sign(context.Background(), msg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("signers used:", len(receipt.Signers))
	fmt.Println("verifies locally:", group.Verify(msg, sig))
	// Output:
	// signers used: 3
	// verifies locally: true
}

// Batch signing: many messages, one round-trip, per-message results.
func ExampleClient_SignBatch() {
	group, gatewayURL, stop := startGroup(3, 1)
	defer stop()

	c := &client.Client{BaseURL: gatewayURL}
	msgs := [][]byte{
		[]byte("invoice 0001"),
		[]byte("invoice 0002"),
		[]byte("invoice 0003"),
	}
	sigs, _, err := c.SignBatch(context.Background(), msgs)
	if err != nil {
		log.Fatal(err)
	}
	ok := 0
	for j, sig := range sigs {
		if sig != nil && group.Verify(msgs[j], sig) {
			ok++
		}
	}
	fmt.Printf("%d/%d messages signed and verified\n", ok, len(msgs))
	// Output:
	// 3/3 messages signed and verified
}
