package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	tsig "repro"
	"repro/service"
)

// startKeylessService brings up n keyless signer daemons and a keyless
// coordinator — a quorum with zero pre-distributed key material.
func startKeylessService(t *testing.T, n int) string {
	t.Helper()
	urls := make([]string, n)
	for i := 1; i <= n; i++ {
		s, err := service.NewDaemonSigner(service.DaemonConfig{Index: i})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(s)
		t.Cleanup(srv.Close)
		urls[i-1] = srv.URL
	}
	coord, err := service.NewKeylessCoordinator(urls, service.CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestE2E_ClientDKGAndRefresh walks the fully distributed lifecycle
// through the public client: remote keygen on a keyless quorum, sign,
// proactive refresh, sign again — with typed errors before the key
// exists and on a conflicting re-keygen.
func TestE2E_ClientDKGAndRefresh(t *testing.T) {
	baseURL := startKeylessService(t, 5)
	c := &Client{BaseURL: baseURL}
	ctx := context.Background()

	// Before the keygen, signing fails with the typed sentinel across
	// the HTTP boundary.
	if _, _, err := c.Sign(ctx, []byte("too early")); !errors.Is(err, tsig.ErrNoKeyMaterial) {
		t.Fatalf("pre-keygen Sign err = %v, want ErrNoKeyMaterial", err)
	}
	if _, _, err := c.RunRefresh(ctx); !errors.Is(err, tsig.ErrNoKeyMaterial) {
		t.Fatalf("pre-keygen RunRefresh err = %v, want ErrNoKeyMaterial", err)
	}

	group, resp, err := c.RunDKG(ctx, 2, "client-proto/v1")
	if err != nil {
		t.Fatal(err)
	}
	if group.N != 5 || group.T != 2 || group.Domain != "client-proto/v1" {
		t.Fatalf("group n=%d t=%d domain %q", group.N, group.T, group.Domain)
	}
	if len(resp.Qual) != 5 || len(resp.Crashed) != 0 {
		t.Fatalf("run response %+v", resp)
	}

	msg := []byte("distributed lifecycle")
	sig, _, err := c.Sign(ctx, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !group.Verify(msg, sig) {
		t.Fatal("signature does not verify under the DKG'd group")
	}

	// Re-running keygen on a keyed quorum is a typed conflict.
	if _, _, err := c.RunDKG(ctx, 2, "client-proto/v1"); !errors.Is(err, service.ErrConflict) {
		t.Fatalf("re-keygen err = %v, want ErrConflict", err)
	}

	// One refresh epoch: same public key, new verification keys, still
	// signing.
	refreshed, rresp, err := c.RunRefresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !refreshed.PK.Equal(group.PK) {
		t.Fatal("refresh changed the public key")
	}
	if refreshed.VKs[1].Equal(group.VKs[1]) {
		t.Fatal("refresh did not re-randomize the verification keys")
	}
	if len(rresp.Crashed) != 0 {
		t.Fatalf("refresh crashed = %v", rresp.Crashed)
	}
	msg2 := []byte("after the epoch")
	sig2, _, err := c.Sign(ctx, msg2)
	if err != nil {
		t.Fatal(err)
	}
	if !refreshed.Verify(msg2, sig2) {
		t.Fatal("post-refresh signature does not verify")
	}
}
