package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	tsig "repro"
	"repro/service"
)

// The fixture: one in-process group (n=3, t=1), its signers, and a
// coordinator, all on httptest servers. Shared across tests (the DKG is
// the expensive part).
var (
	fixOnce  sync.Once
	fixErr   error
	fixGroup *tsig.Group
	fixMems  []*tsig.Member
)

func fixture(t *testing.T) (*tsig.Group, []*tsig.Member) {
	t.Helper()
	fixOnce.Do(func() {
		scheme := tsig.NewScheme(tsig.WithDomain("client-test/v1"))
		fixGroup, fixMems, fixErr = scheme.Keygen(3, 1)
	})
	if fixErr != nil {
		t.Fatalf("Keygen fixture: %v", fixErr)
	}
	return fixGroup, fixMems
}

// startService brings up signers plus a coordinator and returns the
// coordinator's base URL.
func startService(t *testing.T, cfg service.CoordinatorConfig) string {
	t.Helper()
	group, members := fixture(t)
	urls := make([]string, group.N)
	for i, m := range members {
		s, err := service.NewSigner(group, m.PrivateShare(), service.SignerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(s)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	coord, err := service.NewCoordinator(group, urls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestClientSignEndToEnd: the public client against a real coordinator,
// verified against the locally trusted group.
func TestClientSignEndToEnd(t *testing.T) {
	group, _ := fixture(t)
	c := &Client{BaseURL: startService(t, service.CoordinatorConfig{})}
	ctx := context.Background()

	msg := []byte("client end to end")
	sig, receipt, err := c.Sign(ctx, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !group.Verify(msg, sig) {
		t.Fatal("signature from coordinator does not verify")
	}
	if len(receipt.Signers) != group.T+1 {
		t.Fatalf("receipt lists %d signers, want %d", len(receipt.Signers), group.T+1)
	}

	pk, info, err := c.FetchPubkey(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != group.N || info.T != group.T || !pk.Equal(group.PK) {
		t.Fatal("FetchPubkey returned a different group")
	}

	hr, err := c.Health(ctx)
	if err != nil || hr.Status != "ok" {
		t.Fatalf("health: %v %+v", err, hr)
	}
}

// TestClientSignBatch: batch round-trip with per-message results.
func TestClientSignBatch(t *testing.T) {
	group, _ := fixture(t)
	c := &Client{BaseURL: startService(t, service.CoordinatorConfig{})}
	msgs := [][]byte{[]byte("batch a"), []byte("batch b"), []byte("batch c")}
	sigs, _, err := c.SignBatch(context.Background(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	for j, sig := range sigs {
		if sig == nil || !group.Verify(msgs[j], sig) {
			t.Fatalf("message %d: missing or invalid signature", j)
		}
	}
}

// TestClientTypedErrors: wire codes map back onto the tsig sentinels, so
// errors.Is works across the HTTP boundary.
func TestClientTypedErrors(t *testing.T) {
	c := &Client{BaseURL: startService(t, service.CoordinatorConfig{})}
	ctx := context.Background()

	_, _, err := c.Sign(ctx, nil)
	if !errors.Is(err, tsig.ErrEmptyMessage) {
		t.Fatalf("empty message: want ErrEmptyMessage, got %v", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("want *APIError with status 400, got %v", err)
	}

	big := make([][]byte, service.DefaultMaxBatch+1)
	for i := range big {
		big[i] = []byte{byte(i + 1)}
	}
	if _, _, err := c.SignBatch(ctx, big); !errors.Is(err, tsig.ErrBatchTooLarge) {
		t.Fatalf("oversized batch: want ErrBatchTooLarge, got %v", err)
	}
}

// TestClientQuorumError: with every signer unreachable the coordinator
// answers 502 with the quorum code.
func TestClientQuorumError(t *testing.T) {
	group, _ := fixture(t)
	down := httptest.NewServer(http.NotFoundHandler())
	downURL := down.URL
	down.Close()
	urls := make([]string, group.N)
	for i := range urls {
		urls[i] = downURL
	}
	coord, err := service.NewCoordinator(group, urls, service.CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	_, _, err = c.Sign(context.Background(), []byte("no quorum for this"))
	if !errors.Is(err, tsig.ErrQuorumUnreachable) {
		t.Fatalf("want ErrQuorumUnreachable, got %v", err)
	}
	if errors.Is(err, tsig.ErrInvalidShare) {
		t.Fatalf("no share was Byzantine, yet error claims invalid shares: %v", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("want 502 *APIError, got %v", err)
	}
}

// roundTripperFunc adapts a function to the Transport interface.
type roundTripperFunc func(req *http.Request) (*http.Response, error)

func (f roundTripperFunc) Do(req *http.Request) (*http.Response, error) { return f(req) }

// TestClientCustomTransport: a Transport can rewrite requests (here:
// inject a header and count calls) without touching the client.
func TestClientCustomTransport(t *testing.T) {
	group, _ := fixture(t)
	base := startService(t, service.CoordinatorConfig{})
	calls := 0
	c := &Client{
		BaseURL: base,
		Transport: roundTripperFunc(func(req *http.Request) (*http.Response, error) {
			calls++
			req.Header.Set("X-Test", "1")
			return http.DefaultClient.Do(req)
		}),
	}
	msg := []byte("transport message")
	sig, _, err := c.Sign(context.Background(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if !group.Verify(msg, sig) {
		t.Fatal("invalid signature through custom transport")
	}
	if calls != 1 {
		t.Fatalf("transport saw %d calls, want 1", calls)
	}
}

// TestClientOverloadedSigner: a signer that sheds load with the
// overloaded code surfaces ErrOverloaded through the direct client.
func TestClientOverloadedSigner(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"signer overloaded","code":"overloaded"}`))
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	_, _, err := c.Sign(context.Background(), []byte("m"))
	if !errors.Is(err, tsig.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
}

// TestClientByzantineQuorumError: when quorum fails WITH Byzantine
// shares among the answers, the wire code carries that evidence and
// errors.Is(err, tsig.ErrInvalidShare) holds across the HTTP boundary.
func TestClientByzantineQuorumError(t *testing.T) {
	group, members := fixture(t)
	urls := make([]string, group.N)
	for i, m := range members {
		s, err := service.NewSigner(group, m.PrivateShare(), service.SignerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		// Every signer is Byzantine: it signs a different message than
		// the one requested, so shares are well-formed but invalid.
		tampered := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			body, _ := io.ReadAll(r.Body)
			var req service.SignRequest
			if r.URL.Path == "/v1/sign" && json.Unmarshal(body, &req) == nil {
				req.Message = append(req.Message, []byte("::evil")...)
				body, _ = json.Marshal(req)
			}
			r2 := r.Clone(r.Context())
			r2.Body = io.NopCloser(bytes.NewReader(body))
			r2.ContentLength = int64(len(body))
			s.ServeHTTP(w, r2)
		})
		srv := httptest.NewServer(tampered)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	coord, err := service.NewCoordinator(group, urls, service.CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	_, _, err = c.Sign(context.Background(), []byte("byzantine quorum probe"))
	if !errors.Is(err, tsig.ErrQuorumUnreachable) {
		t.Fatalf("want ErrQuorumUnreachable, got %v", err)
	}
	if !errors.Is(err, tsig.ErrInvalidShare) {
		t.Fatalf("want ErrInvalidShare carried across the wire, got %v", err)
	}
	if !errors.Is(err, tsig.ErrInsufficientShares) {
		t.Fatalf("want ErrInsufficientShares carried across the wire, got %v", err)
	}
}

// TestClientRequestIDPropagation: a caller-chosen request id rides the
// outbound request, comes back in the signing receipt, and is attached
// to API errors for log correlation.
func TestClientRequestIDPropagation(t *testing.T) {
	group, _ := fixture(t)
	base := startService(t, service.CoordinatorConfig{})
	var sawHeader string
	c := &Client{
		BaseURL: base,
		Transport: roundTripperFunc(func(req *http.Request) (*http.Response, error) {
			sawHeader = req.Header.Get(service.HeaderRequestID)
			return http.DefaultClient.Do(req)
		}),
	}
	const rid = "cli-trace-0001"
	ctx := service.WithRequestID(context.Background(), rid)

	msg := []byte("traced through the client")
	sig, receipt, err := c.Sign(ctx, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !group.Verify(msg, sig) {
		t.Fatal("invalid signature")
	}
	if sawHeader != rid {
		t.Fatalf("outbound %s header = %q, want %q", service.HeaderRequestID, sawHeader, rid)
	}
	if receipt.RequestID != rid {
		t.Fatalf("receipt request id = %q, want %q", receipt.RequestID, rid)
	}

	// Without a caller-chosen id the coordinator generates one and the
	// receipt still carries it.
	_, receipt, err = c.Sign(context.Background(), []byte("auto-id message"))
	if err != nil {
		t.Fatal(err)
	}
	if receipt.RequestID == "" {
		t.Fatal("receipt missing the coordinator-generated request id")
	}

	// Errors carry the id too.
	_, _, err = c.Sign(ctx, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.RequestID != rid {
		t.Fatalf("APIError request id = %q, want %q", apiErr.RequestID, rid)
	}
}
