// Package client is the HTTP client for the threshold-signing service
// (repro/service): it talks to a coordinator gateway — or directly to
// signer daemons for the endpoints they share — and returns the public
// tsig types.
//
// The transport is pluggable: anything with *http.Client's Do method
// satisfies Transport, so connection pooling, retries, authentication,
// tracing, or a completely different wire (a test double, a unix-socket
// dialer) can be slotted in without touching the client:
//
//	c := &client.Client{BaseURL: "http://coordinator:9090"}
//	sig, receipt, err := c.Sign(ctx, msg)
//	if errors.Is(err, tsig.ErrQuorumUnreachable) { ... }
//
// Errors are typed end to end: non-2xx answers carry a machine-readable
// code (see the service package's Code* constants) that is mapped back
// onto the tsig sentinel errors, so errors.Is works across the process
// boundary exactly as it does in-process.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	tsig "repro"
	"repro/service"
)

// Transport issues HTTP requests. *http.Client satisfies it; so does any
// middleware that wraps one.
type Transport interface {
	Do(req *http.Request) (*http.Response, error)
}

// maxResponseBytes caps how much of a response body is read back,
// mirroring the service's own request cap.
const maxResponseBytes = 1 << 20

// Client talks to a coordinator (or, for FetchPubkey/FetchVK/Health, any
// signer — they serve the same schema). The zero value with a BaseURL is
// ready to use.
//
// A multi-tenant deployment scopes requests to one tenant group with
// ForGroup; the zero GroupID speaks the legacy un-namespaced routes,
// which the service aliases to its "default" group.
type Client struct {
	// BaseURL is the server's base URL, without a trailing slash.
	BaseURL string
	// GroupID scopes signing and protocol requests to one tenant group
	// via the /v1/g/{GroupID}/... routes. Empty means the legacy /v1/...
	// routes (the service's default group). Set it with ForGroup.
	GroupID string
	// Transport issues the requests; nil means http.DefaultClient.
	Transport Transport
}

// ForGroup returns a copy of the client scoped to one tenant group: all
// per-group calls (Sign, SignBatch, FetchPubkey, FetchVK, RunDKG,
// Rotate, RunRefresh) go to that group's namespaced routes. Fleet-wide
// calls (Health, Ready, ListGroups, DeleteGroup) are unaffected.
func (c *Client) ForGroup(id string) *Client {
	cp := *c
	cp.GroupID = id
	return &cp
}

// path builds a group-scoped request path: "/v1" + p for the legacy
// default, "/v1/g/{gid}" + p when the client is scoped to a group.
func (c *Client) path(p string) string {
	if c.GroupID == "" {
		return "/v1" + p
	}
	return "/v1/g/" + c.GroupID + p
}

func (c *Client) transport() Transport {
	if c.Transport == nil {
		return http.DefaultClient
	}
	return c.Transport
}

// APIError is a non-2xx answer from the service: the HTTP status, the
// machine-readable wire code, and the server's message. It unwraps to
// the matching tsig sentinel error when the code names one.
type APIError struct {
	Path      string // request path, e.g. "/v1/sign"
	Status    int    // HTTP status code
	Code      string // wire code (service.Code* constant), possibly empty
	Message   string // server's human-readable message
	RequestID string // the server's X-Request-ID echo, for log correlation
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("client: %s: %s (status %d)", e.Path, e.Message, e.Status)
	}
	return fmt.Sprintf("client: %s: status %d", e.Path, e.Status)
}

// Unwrap maps the wire code back onto the typed sentinels the
// server-side error wrapped, so errors.Is crosses the process boundary —
// including the distinction between "quorum missed because signers were
// down" and "quorum missed with Byzantine shares among the answers".
func (e *APIError) Unwrap() []error {
	switch e.Code {
	case service.CodeEmptyMessage:
		return []error{tsig.ErrEmptyMessage}
	case service.CodeBatchTooLarge:
		return []error{tsig.ErrBatchTooLarge}
	case service.CodeOverloaded:
		return []error{tsig.ErrOverloaded}
	case service.CodeQuorum:
		return []error{tsig.ErrQuorumUnreachable, tsig.ErrInsufficientShares}
	case service.CodeQuorumInvalidShares:
		return []error{tsig.ErrQuorumUnreachable, tsig.ErrInsufficientShares, tsig.ErrInvalidShare}
	case service.CodeNoKey:
		return []error{tsig.ErrNoKeyMaterial}
	case service.CodeProtoFailed:
		return []error{tsig.ErrProtocolFailed}
	case service.CodeSessionNotFound:
		return []error{service.ErrSessionNotFound}
	case service.CodeConflict:
		return []error{service.ErrConflict}
	case service.CodeUnknownGroup:
		return []error{service.ErrUnknownGroup}
	case service.CodeGroupDeleted:
		return []error{service.ErrGroupDeleted}
	default:
		return nil
	}
}

// Sign requests a full threshold signature on msg from the coordinator.
// The receipt carries the quorum accounting (which signers contributed,
// cache/coalescing flags).
func (c *Client) Sign(ctx context.Context, msg []byte) (*tsig.Signature, *service.SignatureResponse, error) {
	body, err := json.Marshal(service.SignRequest{Message: msg})
	if err != nil {
		return nil, nil, err
	}
	var sr service.SignatureResponse
	if err := c.postJSON(ctx, c.path("/sign"), body, &sr); err != nil {
		return nil, nil, err
	}
	sig, err := tsig.UnmarshalSignature(sr.Signature)
	if err != nil {
		return nil, nil, fmt.Errorf("client: coordinator returned malformed signature: %w", err)
	}
	return sig, &sr, nil
}

// SignBatch requests threshold signatures for every message in one
// round-trip to the coordinator. sigs[j] is the signature for msgs[j],
// or nil when that message failed — the per-message error strings are in
// the response. The error is non-nil only for transport- or
// request-level failures.
func (c *Client) SignBatch(ctx context.Context, msgs [][]byte) ([]*tsig.Signature, *service.SignBatchResponse, error) {
	body, err := json.Marshal(service.SignBatchRequest{Messages: msgs})
	if err != nil {
		return nil, nil, err
	}
	var br service.SignBatchResponse
	if err := c.postJSON(ctx, c.path("/sign-batch"), body, &br); err != nil {
		return nil, nil, err
	}
	if len(br.Results) != len(msgs) {
		return nil, nil, fmt.Errorf("client: coordinator answered %d results for %d messages", len(br.Results), len(msgs))
	}
	sigs := make([]*tsig.Signature, len(msgs))
	for j, res := range br.Results {
		if res.Error != "" {
			continue
		}
		if sigs[j], err = tsig.UnmarshalSignature(res.Signature); err != nil {
			return nil, nil, fmt.Errorf("client: coordinator returned malformed signature for message %d: %w", j, err)
		}
	}
	return sigs, &br, nil
}

// RunDKG asks the coordinator to drive a distributed key generation
// across its signer daemons: every daemon generates its share locally
// with Pedersen's DKG — no trusted dealer, no pre-distributed key
// material, and no share ever crosses the wire to this client. The
// returned Group is the public outcome (threshold public key plus
// verification keys), decoded from the response and validated; t is the
// threshold (any t+1 of the coordinator's n signers will sign, n >=
// 2t+1) and domain the parameter domain-separation label.
//
// The call is long-running (it spans every protocol round plus the
// finish phase), so pass a context with a generous deadline. Typed
// failures cross the wire: errors.Is(err, tsig.ErrProtocolFailed) when
// too many signers crashed or the survivors disagreed, and
// service.ErrConflict when the quorum already holds key material.
// When the client is scoped to an unknown group ID (ForGroup), the run
// MINTS the tenant: the fleet registers the ID and generates its key
// material on the spot — keygen as a service.
func (c *Client) RunDKG(ctx context.Context, t int, domain string) (*tsig.Group, *service.ProtoRunResponse, error) {
	return c.runProto(ctx, c.path("/proto/dkg/run"), service.ProtoRunRequest{T: t, Domain: domain})
}

// Rotate asks the coordinator to REPLACE the group's key material with a
// freshly generated one (a full DKG under a bumped epoch). Unlike
// RunRefresh, rotation changes the threshold public key: signatures
// issued before the rotation stay valid under the old key, but the
// service only produces signatures under the new one from here on.
func (c *Client) Rotate(ctx context.Context, t int, domain string) (*tsig.Group, *service.ProtoRunResponse, error) {
	return c.runProto(ctx, c.path("/proto/dkg/run"), service.ProtoRunRequest{T: t, Domain: domain, Rotate: true})
}

// RunRefresh asks the coordinator to drive one proactive refresh epoch
// (Section 3.3) across its signer daemons: every daemon's share is
// re-randomized in place while the threshold public key stays the same,
// so shares stolen in different epochs cannot be combined. The returned
// Group carries the new verification keys; any signers listed in the
// response's Crashed field kept their old (now stale) shares and need
// share recovery before they can sign again.
func (c *Client) RunRefresh(ctx context.Context) (*tsig.Group, *service.ProtoRunResponse, error) {
	return c.runProto(ctx, c.path("/proto/refresh/run"), service.ProtoRunRequest{})
}

func (c *Client) runProto(ctx context.Context, path string, req service.ProtoRunRequest) (*tsig.Group, *service.ProtoRunResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	var pr service.ProtoRunResponse
	if err := c.postJSON(ctx, path, body, &pr); err != nil {
		return nil, nil, err
	}
	group, err := tsig.UnmarshalGroup(pr.Group)
	if err != nil {
		return nil, nil, fmt.Errorf("client: coordinator returned malformed group: %w", err)
	}
	return group, &pr, nil
}

// FetchPubkey retrieves the group description and reconstructs the
// public key (parameters are rebuilt from the domain label, exactly as
// every server derives them). Verifying against a key the service itself
// reports catches transport corruption but not a lying server; prefer a
// locally trusted Group when one is available.
func (c *Client) FetchPubkey(ctx context.Context) (*tsig.PublicKey, *service.PubkeyResponse, error) {
	var pr service.PubkeyResponse
	if err := c.getJSON(ctx, c.path("/pubkey"), &pr); err != nil {
		return nil, nil, err
	}
	params := tsig.NewScheme(tsig.WithDomain(pr.Domain)).Params()
	pk, err := tsig.UnmarshalPublicKey(params, pr.PK)
	if err != nil {
		return nil, nil, fmt.Errorf("client: malformed public key from %s: %w", c.BaseURL, err)
	}
	return pk, &pr, nil
}

// FetchVK retrieves a signer daemon's own verification key (signers
// only; the coordinator does not serve /v1/vk).
func (c *Client) FetchVK(ctx context.Context) (*tsig.VerificationKey, *service.VKResponse, error) {
	var vr service.VKResponse
	if err := c.getJSON(ctx, c.path("/vk"), &vr); err != nil {
		return nil, nil, err
	}
	vk, err := tsig.UnmarshalVerificationKey(vr.VK)
	if err != nil {
		return nil, nil, fmt.Errorf("client: malformed verification key from %s: %w", c.BaseURL, err)
	}
	return vk, &vr, nil
}

// Health probes /healthz. Health is liveness only: a keyless daemon is
// healthy (it can still run a keygen); readiness to SIGN is Ready.
func (c *Client) Health(ctx context.Context) (*service.HealthResponse, error) {
	var hr service.HealthResponse
	if err := c.getJSON(ctx, "/healthz", &hr); err != nil {
		return nil, err
	}
	return &hr, nil
}

// Ready probes /readyz: whether the server can sign for at least one
// group, with the per-group key state. Unlike the other calls, a 503
// (unready) answer is NOT an error — it still carries the per-group
// breakdown; inspect Status. The error is non-nil only for transport
// failures or non-readiness statuses.
func (c *Client) Ready(ctx context.Context) (*service.ReadyResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.transport().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, err
	}
	var rr service.ReadyResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusServiceUnavailable {
		if err := json.Unmarshal(raw, &rr); err == nil && rr.Status != "" {
			return &rr, nil
		}
	}
	return nil, &APIError{Path: "/readyz", Status: resp.StatusCode, Message: string(bytes.TrimSpace(raw))}
}

// ListGroups enumerates the tenant groups the server knows, including
// tombstoned (deleted) IDs.
func (c *Client) ListGroups(ctx context.Context) ([]service.GroupInfo, error) {
	var gr service.GroupsResponse
	if err := c.getJSON(ctx, "/v1/groups", &gr); err != nil {
		return nil, err
	}
	return gr.Groups, nil
}

// DeleteGroup tombstones a tenant group on the coordinator and fans the
// deletion out to the signers. The ID is retired permanently — it can
// never be re-registered, so a stray cached signature can never be
// confused with a fresh one. The returned slice lists signer indexes
// the deletion did not reach (down or erroring); re-issue the call once
// they are back — deletion is idempotent.
func (c *Client) DeleteGroup(ctx context.Context, id string) ([]int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/g/"+id, nil)
	if err != nil {
		return nil, err
	}
	var dr service.GroupDeleteResponse
	if err := c.doJSON(req, &dr); err != nil {
		return nil, err
	}
	return dr.Unreachable, nil
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	return c.doJSON(req, out)
}

func (c *Client) postJSON(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.doJSON(req, out)
}

func (c *Client) doJSON(req *http.Request, out any) error {
	// Propagate a caller-chosen request id (service.WithRequestID) so one
	// trace id follows the request through the coordinator's logs and its
	// fan-out to the signers; without one the coordinator generates its
	// own and echoes it back in the response header and body.
	if rid := service.RequestIDFromContext(req.Context()); rid != "" {
		req.Header.Set(service.HeaderRequestID, rid)
	}
	resp, err := c.transport().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{
			Path: req.URL.Path, Status: resp.StatusCode,
			RequestID: resp.Header.Get(service.HeaderRequestID),
		}
		var er service.ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			apiErr.Code = er.Code
			apiErr.Message = er.Error
		} else {
			apiErr.Message = string(bytes.TrimSpace(raw))
		}
		return apiErr
	}
	return json.Unmarshal(raw, out)
}
